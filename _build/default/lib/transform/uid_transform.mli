(** The paper's source-to-source UID transformation (Section 3.3),
    automated.

    The transformation has two parts:

    {b Instrumentation} (identical for every variant, so the variants'
    system-call sequences stay aligned):
    - {e explication}: implicit UID constants are made explicit —
      [!uid_expr] becomes [uid_expr == 0], a bare [uid_expr] used as a
      condition becomes [uid_expr != 0] (the paper's
      [if(!getuid())] → [if(getuid()==0)] example);
    - {e comparison exposure}: UID-to-UID comparisons become the
      Table 2 [cc_*] detection calls (mode {!Cc_calls}), or are left in
      user space (mode {!User_space}, the Section 5 alternative);
    - {e conditional exposure}: [if]/[while] conditions influenced by
      UID data are wrapped in [cond_chk];
    - {e value exposure}: UID values passed to user functions or
      returned from them are wrapped in [uid_value].

    {b Reexpression} (per variant): every explicit UID constant
    [(uid_t)lit] is replaced by [(uid_t)R_i(lit)], and in {!User_space}
    mode UID order comparisons are logically reversed for variants
    whose reexpression function reverses the order of the low 31 bits.

    The per-category change counts are reported, mirroring the paper's
    accounting of its 73 manual Apache changes (15 constants, 16
    uid_value, 22 comparison exposures, 20 cond_chk). *)

type mode =
  | Cc_calls  (** comparisons exposed as [cc_*] syscalls (the paper's design) *)
  | User_space
      (** the Section 5 alternative: rely on the existing syscall-
          boundary monitoring alone — no [cc_*], [cond_chk] or
          [uid_value] insertion; comparisons stay in user space and
          order comparisons are logically reversed in variants whose
          reexpression function reverses the value order. Cheaper, but
          corruption is only caught at the next real UID-bearing
          kernel call (coarser detection). *)

type report = {
  constants : int;  (** reexpressed constant sites *)
  explications : int;  (** implicit constants made explicit (subset of sites) *)
  uid_value_calls : int;
  cc_calls : int;
  cond_chks : int;
  reversed_comparisons : int;  (** User_space mode, order-reversing variants *)
  log_scrubs : int;  (** UID values removed from log/write output *)
}

val total_changes : report -> int
(** Sum of all categories except [explications] (an explication site is
    also a constant site, as in the paper's counting). *)

val empty_report : report

val pp_report : Format.formatter -> report -> unit

val instrument :
  ?mode:mode -> ?scrub_logs:bool -> Nv_minic.Tast.tprogram -> Nv_minic.Tast.tprogram * report
(** Variant-independent instrumentation (default mode {!Cc_calls},
    [scrub_logs] true). The result must be fed to {!reexpress} for each
    variant. The report's [constants] counts the sites that
    {!reexpress} will rewrite. *)

val reexpress :
  ?mode:mode -> f:Nv_core.Reexpression.t -> Nv_minic.Tast.tprogram -> Nv_minic.Tast.tprogram
(** Apply a variant's reexpression function to every UID constant; in
    {!User_space} mode, also reverse UID order comparisons when [f] is
    order-reversing (detected by probing [f] on 0 and 1). *)

val transform_source :
  ?mode:mode ->
  ?scrub_logs:bool ->
  variation:Nv_core.Variation.t ->
  string ->
  (Nv_vm.Image.t array * report, string) result
(** End to end: parse, typecheck, instrument once, reexpress and
    compile per variant. Returns one image per variant of the
    variation. *)

val variant_source : ?mode:mode -> f:Nv_core.Reexpression.t -> string -> (string, string) result
(** Pretty-printed mini-C source of one transformed variant — the
    paper-style "diff view" used by examples. *)
