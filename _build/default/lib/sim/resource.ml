type job = { duration : float; complete : unit -> unit }

type t = {
  engine : Engine.t;
  name : string;
  capacity : int;
  mutable busy : int;
  mutable busy_time : float;
  waiting : job Queue.t;
}

let create engine ~name ~capacity =
  if capacity < 1 then invalid_arg "Resource.create: capacity must be >= 1";
  { engine; name; capacity; busy = 0; busy_time = 0.0; waiting = Queue.create () }

let name t = t.name

let rec start t job =
  t.busy <- t.busy + 1;
  t.busy_time <- t.busy_time +. job.duration;
  Engine.schedule_after t.engine ~delay:job.duration (fun () -> finish t job)

and finish t job =
  t.busy <- t.busy - 1;
  job.complete ();
  (* The completion callback may itself have submitted work; only pull
     from the queue if a slot is still free afterwards. *)
  if t.busy < t.capacity && not (Queue.is_empty t.waiting) then
    start t (Queue.pop t.waiting)

let serve t ~duration complete =
  if duration < 0.0 then invalid_arg "Resource.serve: negative duration";
  let job = { duration; complete } in
  if t.busy < t.capacity then start t job else Queue.push job t.waiting

let busy t = t.busy

let queue_length t = Queue.length t.waiting

let busy_time t = t.busy_time

let utilization t =
  let elapsed = Engine.now t.engine in
  if elapsed <= 0.0 then 0.0
  else t.busy_time /. (float_of_int t.capacity *. elapsed)
