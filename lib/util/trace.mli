(** Flight-recorder tracing: per-domain bounded event rings.

    A {!t} is a trace session owning a set of fixed-capacity {!ring}s.
    Each ring is single-writer — the domain that owns it records
    without any locking — and holds the most recent events: when full,
    recording drops the oldest event and bumps a dropped counter, so a
    ring always retains the tail of the execution that led up to the
    present (the property a post-mortem needs).

    Recording is gated on one [Atomic.get]: when the session is
    disabled, a guarded call site
    [if Trace.enabled t then Trace.record ring ~ts ev] costs a single
    atomic load and a branch, and allocates nothing because the event
    constructor sits inside the guard. Everything here is deterministic:
    timestamps come from the caller (retired instruction counts,
    simulated seconds), never the host clock, so sequential and
    parallel runs of the same program record identical streams.

    Rings are snapshotted by a coordinator only after their owning
    domain has quiesced (e.g. after its arrival was popped from an SPSC
    ring, which publishes all prior writes); the structure itself does
    no cross-domain synchronization beyond the enable flag. *)

type t
(** A trace session: enable flag + registered rings. *)

type ring
(** A bounded single-writer event ring inside a session. *)

(** Typed events. The ring identity (its [pid]/[tid]) carries which
    replica / variant the event belongs to, so events themselves only
    carry payload. *)
type kind =
  | Quantum_begin  (** a variant starts a run-to-trap quantum *)
  | Quantum_end of { retired : int }  (** quantum ended; retired so far *)
  | Syscall_enter of { number : int; args : int array }
      (** syscall entered with canonicalized arguments *)
  | Syscall_exit of { number : int; result : int }
  | Rendezvous of { number : int; relaxed : bool }
      (** cross-variant check: full rendezvous, or the deferred replay
          of a relaxed record *)
  | Deferred_flush of { batch : int }
      (** a deferred-batch cross-check of [batch] relaxed records *)
  | Signal of { handler : string; immediate : bool }  (** delivery *)
  | Kernel_call of { name : string; seq : int }
      (** kernel dispatch; [seq] is the kernel's syscall ordinal *)
  | Checkpoint of { rendezvous : int }  (** supervisor checkpoint *)
  | Rollback of { rendezvous : int; dropped : int }
      (** supervisor rollback to [rendezvous], dropping connections *)
  | Failstop of { rendezvous : int }  (** recovery budget exhausted *)
  | Health of { replica : int; state : string }
      (** fleet replica health transition *)
  | Shed of { replica : int }
      (** fleet load shedding ([-1] = no replica available) *)
  | Alarm of { label : string }  (** divergence alarm classified *)
  | Note of string

type event = { ts : int; kind : kind }
(** [ts] is in the caller's deterministic time unit (microseconds in
    Chrome export terms). *)

val create : ?capacity:int -> unit -> t
(** A new session, initially disabled. [capacity] (default 1024) is
    the per-ring event capacity; it must be positive. *)

val set_enabled : t -> bool -> unit

val enabled : t -> bool
(** One atomic load. Call sites guard event construction on this so a
    disabled recorder allocates nothing. *)

val enabled_ring : ring -> bool
(** {!enabled} of the ring's owning session — for call sites that hold
    a ring but not the session. *)

val ring : t -> name:string -> pid:int -> tid:int -> ring
(** Register a new ring. Registration is not thread-safe: create all
    rings from the coordinating domain before handing each to its
    owner. [pid]/[tid] name the Chrome trace process/thread rows
    (pid = replica, tid = variant or coordinator lane). *)

val record : ring -> ts:int -> kind -> unit
(** Append from the owning domain. No-op when the session is disabled
    (call sites should still guard with {!enabled} to avoid
    constructing the event). Drops the oldest event when full. *)

val note : ring -> ts:int -> string -> unit
(** [record] of a [Note], with the string built only when enabled —
    convenience for printf-style breadcrumbs. *)

val events : ring -> event list
(** Retained events, oldest first. Read from the coordinator after the
    owner quiesced. *)

val dropped : ring -> int
(** Events evicted from this ring since creation. *)

val recorded : ring -> int
(** Total events ever recorded into this ring (retained + dropped). *)

val ring_name : ring -> string
val rings : t -> ring list
(** All rings in registration order. *)

val clear : t -> unit
(** Empty every ring and reset drop counters (the session keeps its
    enable state). *)

val publish : t -> Metrics.t -> unit
(** Set the [trace.rings], [trace.events] and [trace.dropped] gauges
    from the session's current totals. *)

(** {1 Sinks} *)

val to_chrome :
  ?syscall_name:(int -> string) ->
  ?extra:(string * Metrics.Json.value) list ->
  t ->
  Metrics.Json.value
(** The whole session as a Chrome trace-event JSON object —
    [{"traceEvents": [...], ...}] — loadable in Perfetto or
    [chrome://tracing]. Quanta and syscalls become "B"/"E" duration
    pairs (an unmatched end from ring truncation is tolerated by both
    viewers); everything else becomes instant events. [syscall_name]
    renders syscall numbers (default ["sys#N"]); [extra] appends
    top-level keys (e.g. a ["forensics"] bundle). *)

val ring_events_json : ?syscall_name:(int -> string) -> ?last:int -> ring -> Metrics.Json.value
(** One ring as [{"name"; "pid"; "tid"; "dropped"; "events": [...]}]
    with at most [last] (default all retained) trailing events — the
    building block of a forensics bundle. *)

val event_to_json : ?syscall_name:(int -> string) -> event -> Metrics.Json.value

val pp_event : ?syscall_name:(int -> string) -> Format.formatter -> event -> unit
(** Human-readable one-line rendering ("[seteuid] rendezvous (full)"). *)
