(** Bounded lock-free single-producer single-consumer ring buffer.

    The cross-domain transport of the monitor's relaxed-rendezvous
    engine: each pinned variant domain owns the producer side of one
    ring (syscall records and arrivals flowing to the coordinator) and
    the consumer side of another (release commands flowing back). The
    hot path is wait-free — one [Atomic] load, one plain array write
    and one [Atomic] store per operation, with the opposite index
    cached so an uncontended stream touches the shared counters only
    when the cached view runs out. There is no mutex anywhere in this
    module; blocking (spin-then-park) is layered on top by the caller.

    Positions are monotonically increasing 63-bit ints masked into a
    power-of-two slot array, so indices never wrap in practice.

    Safety: exactly one domain may push and exactly one domain may pop.
    Concurrent pushes (or pops) from two domains are undefined. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] makes a ring holding at least [capacity]
    elements (rounded up to a power of two). [capacity >= 1] or
    [Invalid_argument]. *)

val capacity : 'a t -> int
(** The actual (rounded) capacity. *)

val try_push : 'a t -> 'a -> bool
(** Producer side: enqueue, or return [false] when full. *)

val try_pop : 'a t -> 'a option
(** Consumer side: dequeue the oldest element, or [None] when empty.
    The slot is cleared so the ring holds no stale references. *)

val length : 'a t -> int
(** Elements currently queued. Safe from either side (two atomic
    loads); exact for the calling side, conservative for the other. *)
