examples/async_signals.ml: List Nv_core Nv_minic Nv_transform Printf
