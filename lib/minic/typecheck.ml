type error = { in_func : string option; message : string }

let pp_error ppf { in_func; message } =
  match in_func with
  | Some f -> Format.fprintf ppf "in %s: %s" f message
  | None -> Format.fprintf ppf "%s" message

exception Type_error of string

let fail fmt = Printf.ksprintf (fun message -> raise (Type_error message)) fmt

let builtins =
  let open Ast in
  [
    ("sys_exit", ([ Tint ], Tint));
    ("sys_read", ([ Tint; Tptr Tchar; Tint ], Tint));
    ("sys_write", ([ Tint; Tptr Tchar; Tint ], Tint));
    ("sys_open", ([ Tptr Tchar; Tint ], Tint));
    ("sys_close", ([ Tint ], Tint));
    ("sys_accept", ([ Tint ], Tint));
    ("getuid", ([], Tuid));
    ("geteuid", ([], Tuid));
    ("setuid", ([ Tuid ], Tint));
    ("seteuid", ([ Tuid ], Tint));
    ("getgid", ([], Tuid));
    ("getegid", ([], Tuid));
    ("setgid", ([ Tuid ], Tint));
    ("setegid", ([ Tuid ], Tint));
    ("uid_value", ([ Tuid ], Tuid));
    ("cond_chk", ([ Tint ], Tint));
    ("cc_eq", ([ Tuid; Tuid ], Tint));
    ("cc_neq", ([ Tuid; Tuid ], Tint));
    ("cc_lt", ([ Tuid; Tuid ], Tint));
    ("cc_leq", ([ Tuid; Tuid ], Tint));
    ("cc_gt", ([ Tuid; Tuid ], Tint));
    ("cc_geq", ([ Tuid; Tuid ], Tint));
  ]

type env = {
  globals : (string, Ast.ty) Hashtbl.t;
  funcs : (string, Ast.ty list * Ast.ty) Hashtbl.t;
  mutable scopes : (string, Ast.ty) Hashtbl.t list;
  mutable current_ret : Ast.ty;
  mutable loop_depth : int;
}

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes

let pop_scope env =
  match env.scopes with
  | [] -> ()
  | _ :: rest -> env.scopes <- rest

let declare_local env name ty =
  match env.scopes with
  | [] -> fail "internal: no scope"
  | scope :: _ ->
    if Hashtbl.mem scope name then fail "duplicate declaration of %s" name;
    Hashtbl.add scope name ty

let lookup_var env name =
  let rec search = function
    | [] -> Hashtbl.find_opt env.globals name
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with Some ty -> Some ty | None -> search rest)
  in
  search env.scopes

(* Array-to-pointer decay for value contexts. *)
let decay texpr =
  match texpr.Tast.ty with
  | Ast.Tarray (elem, _) -> Tast.{ texpr with ty = Ast.Tptr elem }
  | _ -> texpr

let is_numeric = function Ast.Tint | Ast.Tchar -> true | _ -> false

(* Scalar types usable in boolean contexts. uid_t is allowed here: the
   implied comparison against 0 is made explicit by the transformer. *)
let is_condition_ty = function
  | Ast.Tint | Ast.Tchar | Ast.Tuid | Ast.Tptr _ -> true
  | Ast.Tvoid | Ast.Tarray _ -> false

let is_int_literal texpr =
  match texpr.Tast.e with
  | Tast.Tint_lit _ | Tast.Tchar_lit _ -> true
  | Tast.Tunop (Ast.Neg, { e = Tast.Tint_lit _; _ }) -> true
  | _ -> false

let literal_value texpr =
  match texpr.Tast.e with
  | Tast.Tint_lit v -> v
  | Tast.Tchar_lit c -> Char.code c
  | Tast.Tunop (Ast.Neg, { e = Tast.Tint_lit v; _ }) -> -v
  | _ -> fail "internal: not a literal"

(* Coerce [texpr] to [want]ed type, applying the two legal implicit
   conversions: numeric int<->char, and int literal -> uid_t. *)
let coerce want texpr =
  let texpr = decay texpr in
  let have = texpr.Tast.ty in
  if Ast.ty_equal want have then texpr
  else if is_numeric want && is_numeric have then Tast.{ texpr with ty = want }
  else if want = Ast.Tuid && is_int_literal texpr then Tast.uid_constant (literal_value texpr)
  else if
    (* The literal 0 is a valid pointer constant. *)
    match (want, texpr.Tast.e) with
    | Ast.Tptr _, Tast.Tint_lit 0 -> true
    | _ -> false
  then Tast.{ texpr with ty = want }
  else fail "expected %s but found %s" (Pretty.ty want) (Pretty.ty have)

let rec check_expr env (expr : Ast.expr) : Tast.texpr =
  match expr with
  | Ast.Int_lit v -> Tast.mk (Tast.Tint_lit v) Ast.Tint
  | Ast.Char_lit c -> Tast.mk (Tast.Tchar_lit c) Ast.Tchar
  | Ast.Str_lit s -> Tast.mk (Tast.Tstr_lit s) (Ast.Tptr Ast.Tchar)
  | Ast.Var name -> (
    match lookup_var env name with
    | None -> fail "undefined variable %s" name
    | Some ty -> Tast.mk (Tast.Tvar name) ty)
  | Ast.Unop (op, e) -> check_unop env op e
  | Ast.Binop (op, a, b) -> check_binop env op a b
  | Ast.Assign (lv, e) ->
    let tlv = check_lvalue env lv in
    let te = coerce tlv.Tast.lv_ty (check_expr env e) in
    Tast.mk (Tast.Tassign (tlv, te)) tlv.Tast.lv_ty
  | Ast.Call (name, args) -> check_call env name args
  | Ast.Index (base, idx) ->
    let tbase = decay (check_expr env base) in
    let tidx = check_expr env idx in
    (match (tbase.Tast.ty, tidx.Tast.ty) with
    | Ast.Tptr elem, (Ast.Tint | Ast.Tchar) -> Tast.mk (Tast.Tindex (tbase, tidx)) elem
    | Ast.Tptr _, other -> fail "array index must be numeric, found %s" (Pretty.ty other)
    | other, _ -> fail "cannot index a value of type %s" (Pretty.ty other))
  | Ast.Deref e -> (
    let te = decay (check_expr env e) in
    match te.Tast.ty with
    | Ast.Tptr elem -> Tast.mk (Tast.Tderef te) elem
    | other -> fail "cannot dereference %s" (Pretty.ty other))
  | Ast.Addr_of lv -> (
    let tlv = check_lvalue env lv in
    match tlv.Tast.lv_ty with
    | Ast.Tarray (elem, _) -> Tast.mk (Tast.Taddr_of tlv) (Ast.Tptr elem)
    | ty -> Tast.mk (Tast.Taddr_of tlv) (Ast.Tptr ty))
  | Ast.Cast (ty, e) ->
    let te = decay (check_expr env e) in
    (match (ty, te.Tast.ty) with
    | (Ast.Tint | Ast.Tchar | Ast.Tuid), (Ast.Tint | Ast.Tchar | Ast.Tuid) ->
      Tast.mk (Tast.Tcast (ty, te)) ty
    | Ast.Tptr _, (Ast.Tptr _ | Ast.Tint) -> Tast.mk (Tast.Tcast (ty, te)) ty
    | (Ast.Tint | Ast.Tuid), Ast.Tptr _ -> Tast.mk (Tast.Tcast (ty, te)) ty
    | _ -> fail "invalid cast from %s to %s" (Pretty.ty te.Tast.ty) (Pretty.ty ty))

and check_unop env op e =
  let te = decay (check_expr env e) in
  match op with
  | Ast.Lnot ->
    if is_condition_ty te.Tast.ty then Tast.mk (Tast.Tunop (Ast.Lnot, te)) Ast.Tint
    else fail "'!' applied to %s" (Pretty.ty te.Tast.ty)
  | Ast.Neg | Ast.Bnot ->
    if is_numeric te.Tast.ty then Tast.mk (Tast.Tunop (op, te)) Ast.Tint
    else fail "unary arithmetic on %s" (Pretty.ty te.Tast.ty)

and check_binop env op a b =
  let ta = decay (check_expr env a) in
  let tb = decay (check_expr env b) in
  let tya = ta.Tast.ty and tyb = tb.Tast.ty in
  match op with
  | Ast.Land | Ast.Lor ->
    if is_condition_ty tya && is_condition_ty tyb then
      Tast.mk (Tast.Tbinop (op, ta, tb)) Ast.Tint
    else fail "logical operator on %s and %s" (Pretty.ty tya) (Pretty.ty tyb)
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
    (* uid_t compares against uid_t (with literal coercion); numeric
       against numeric; pointers against same-type pointers or 0. *)
    match (tya, tyb) with
    | Ast.Tuid, _ ->
      let tb = coerce Ast.Tuid tb in
      Tast.mk (Tast.Tbinop (op, ta, tb)) Ast.Tint
    | _, Ast.Tuid ->
      let ta = coerce Ast.Tuid ta in
      Tast.mk (Tast.Tbinop (op, ta, tb)) Ast.Tint
    | a, b when is_numeric a && is_numeric b -> Tast.mk (Tast.Tbinop (op, ta, tb)) Ast.Tint
    | Ast.Tptr _, _ ->
      let tb = coerce tya tb in
      Tast.mk (Tast.Tbinop (op, ta, tb)) Ast.Tint
    | _, Ast.Tptr _ ->
      let ta = coerce tyb ta in
      Tast.mk (Tast.Tbinop (op, ta, tb)) Ast.Tint
    | _ -> fail "cannot compare %s with %s" (Pretty.ty tya) (Pretty.ty tyb))
  | Ast.Add | Ast.Sub -> (
    match (tya, tyb) with
    | a, b when is_numeric a && is_numeric b ->
      Tast.mk (Tast.Tbinop (op, ta, tb)) Ast.Tint
    | Ast.Tptr _, b when is_numeric b -> Tast.mk (Tast.Tbinop (op, ta, tb)) tya
    | a, Ast.Tptr _ when is_numeric a && op = Ast.Add ->
      Tast.mk (Tast.Tbinop (op, ta, tb)) tyb
    | Ast.Tuid, _ | _, Ast.Tuid ->
      fail "arithmetic on uid_t values is not allowed (only assignment and comparison)"
    | _ -> fail "cannot apply arithmetic to %s and %s" (Pretty.ty tya) (Pretty.ty tyb))
  | Ast.Mul | Ast.Div | Ast.Mod | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr ->
    if is_numeric tya && is_numeric tyb then Tast.mk (Tast.Tbinop (op, ta, tb)) Ast.Tint
    else if tya = Ast.Tuid || tyb = Ast.Tuid then
      fail "arithmetic on uid_t values is not allowed (only assignment and comparison)"
    else fail "cannot apply arithmetic to %s and %s" (Pretty.ty tya) (Pretty.ty tyb)

and check_call env name args =
  let sig_opt =
    match List.assoc_opt name builtins with
    | Some (params, ret) -> Some (params, ret)
    | None -> Hashtbl.find_opt env.funcs name
  in
  match sig_opt with
  | None -> fail "call to undefined function %s" name
  | Some (params, ret) ->
    if List.length params <> List.length args then
      fail "%s expects %d arguments, got %d" name (List.length params) (List.length args);
    let targs =
      List.map2 (fun want arg -> coerce want (check_expr env arg)) params args
    in
    Tast.mk (Tast.Tcall (name, targs)) ret

and check_lvalue env (lv : Ast.lvalue) : Tast.tlvalue =
  match lv with
  | Ast.Lvar name -> (
    match lookup_var env name with
    | None -> fail "undefined variable %s" name
    | Some ty -> Tast.{ lv = TLvar name; lv_ty = ty })
  | Ast.Lindex (base, idx) -> (
    let tbase = decay (check_expr env base) in
    let tidx = check_expr env idx in
    match (tbase.Tast.ty, tidx.Tast.ty) with
    | Ast.Tptr elem, (Ast.Tint | Ast.Tchar) ->
      Tast.{ lv = TLindex (tbase, tidx); lv_ty = elem }
    | Ast.Tptr _, other -> fail "array index must be numeric, found %s" (Pretty.ty other)
    | other, _ -> fail "cannot index a value of type %s" (Pretty.ty other))
  | Ast.Lderef e -> (
    let te = decay (check_expr env e) in
    match te.Tast.ty with
    | Ast.Tptr elem -> Tast.{ lv = TLderef te; lv_ty = elem }
    | other -> fail "cannot dereference %s" (Pretty.ty other))

let check_condition env expr =
  let te = decay (check_expr env expr) in
  if is_condition_ty te.Tast.ty then te
  else fail "condition has type %s" (Pretty.ty te.Tast.ty)

let rec check_stmt env (stmt : Ast.stmt) : Tast.tstmt =
  match stmt with
  | Ast.Sexpr e -> Tast.TSexpr (check_expr env e)
  | Ast.Sdecl (ty, name, init) ->
    (match ty with
    | Ast.Tvoid -> fail "variable %s has type void" name
    | Ast.Tarray _ when init <> None -> fail "array %s cannot have an initializer" name
    | _ -> ());
    let tinit = Option.map (fun e -> coerce ty (check_expr env e)) init in
    declare_local env name ty;
    Tast.TSdecl (ty, name, tinit)
  | Ast.Sif (cond, then_s, else_s) ->
    let tcond = check_condition env cond in
    let tthen = check_stmts env then_s in
    let telse = check_stmts env else_s in
    Tast.TSif (tcond, tthen, telse)
  | Ast.Swhile (cond, body) ->
    let tcond = check_condition env cond in
    env.loop_depth <- env.loop_depth + 1;
    let tbody = check_stmts env body in
    env.loop_depth <- env.loop_depth - 1;
    Tast.TSwhile (tcond, tbody)
  | Ast.Sreturn None ->
    if env.current_ret <> Ast.Tvoid then fail "return without a value in a non-void function";
    Tast.TSreturn None
  | Ast.Sreturn (Some e) ->
    if env.current_ret = Ast.Tvoid then fail "return with a value in a void function";
    Tast.TSreturn (Some (coerce env.current_ret (check_expr env e)))
  | Ast.Sbreak ->
    if env.loop_depth = 0 then fail "break outside a loop";
    Tast.TSbreak
  | Ast.Scontinue ->
    if env.loop_depth = 0 then fail "continue outside a loop";
    Tast.TScontinue
  | Ast.Sblock body -> Tast.TSblock (check_stmts env body)

and check_stmts env stmts =
  push_scope env;
  let result = List.map (check_stmt env) stmts in
  pop_scope env;
  result

let check_global errors (g : Ast.global) =
  let bad fmt = Printf.ksprintf (fun m -> errors := { in_func = None; message = m } :: !errors) fmt in
  (match g.Ast.gty with
  | Ast.Tvoid -> bad "global %s has type void" g.Ast.gname
  | _ -> ());
  match (g.Ast.gty, g.Ast.ginit) with
  | _, Ast.Init_none -> ()
  | (Ast.Tint | Ast.Tchar | Ast.Tuid), Ast.Init_int _ -> ()
  | Ast.Tarray (Ast.Tchar, n), Ast.Init_string s ->
    if String.length s + 1 > n then
      bad "string initializer for %s does not fit (needs %d bytes)" g.Ast.gname
        (String.length s + 1)
  | Ast.Tarray ((Ast.Tint | Ast.Tuid), n), Ast.Init_array vs ->
    if List.length vs > n then bad "too many initializers for %s" g.Ast.gname
  | _, _ -> bad "invalid initializer for global %s" g.Ast.gname

let check (program : Ast.program) =
  let errors = ref [] in
  let globals = Hashtbl.create 16 in
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun g ->
      if Hashtbl.mem globals g.Ast.gname then
        errors := { in_func = None; message = "duplicate global " ^ g.Ast.gname } :: !errors;
      check_global errors g;
      Hashtbl.replace globals g.Ast.gname g.Ast.gty)
    (Ast.globals program);
  List.iter
    (fun f ->
      if Hashtbl.mem funcs f.Ast.fname || List.mem_assoc f.Ast.fname builtins then
        errors :=
          { in_func = None; message = "duplicate function " ^ f.Ast.fname } :: !errors;
      Hashtbl.replace funcs f.Ast.fname (List.map fst f.Ast.params, f.Ast.ret))
    (Ast.funcs program);
  let env = { globals; funcs; scopes = []; current_ret = Ast.Tvoid; loop_depth = 0 } in
  let tfuncs =
    List.filter_map
      (fun f ->
        env.current_ret <- f.Ast.ret;
        env.loop_depth <- 0;
        env.scopes <- [];
        push_scope env;
        (try
           List.iter
             (fun (ty, name) ->
               match ty with
               | Ast.Tvoid | Ast.Tarray _ ->
                 fail "parameter %s has invalid type %s" name (Pretty.ty ty)
               | _ -> declare_local env name ty)
             f.Ast.params
         with Type_error message ->
           errors := { in_func = Some f.Ast.fname; message } :: !errors);
        match check_stmts env f.Ast.body with
        | body ->
          pop_scope env;
          Some Tast.{ fname = f.Ast.fname; ret = f.Ast.ret; params = f.Ast.params; body }
        | exception Type_error message ->
          errors := { in_func = Some f.Ast.fname; message } :: !errors;
          None)
      (Ast.funcs program)
  in
  if !errors <> [] then Error (List.rev !errors)
  else Ok Tast.{ tglobals = Ast.globals program; tfuncs }
