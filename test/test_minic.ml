(* Tests for nv_minic: lexer, parser, pretty roundtrip, typechecker
   (uid_t discipline), codegen executed end-to-end on the simulated
   kernel via Runner. *)

open Nv_minic
module Kernel = Nv_os.Kernel
module Vfs = Nv_os.Vfs
module Passwd = Nv_os.Passwd

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let kinds source = List.map (fun t -> t.Token.kind) (Lexer.tokenize source)

let test_lexer_basic () =
  match kinds "int x = 42;" with
  | [ Token.Kw_int; Token.Ident "x"; Token.Assign; Token.Int_lit 42; Token.Semi; Token.Eof ]
    -> ()
  | _ -> Alcotest.fail "unexpected tokens"

let test_lexer_hex_and_char () =
  (match kinds "0x7FFFFFFF" with
  | [ Token.Int_lit 0x7FFFFFFF; Token.Eof ] -> ()
  | _ -> Alcotest.fail "hex");
  match kinds "'\\n' '\\0' 'a'" with
  | [ Token.Char_lit '\n'; Token.Char_lit '\000'; Token.Char_lit 'a'; Token.Eof ] -> ()
  | _ -> Alcotest.fail "chars"

let test_lexer_comments () =
  match kinds "a // line\n /* block\n comment */ b" with
  | [ Token.Ident "a"; Token.Ident "b"; Token.Eof ] -> ()
  | _ -> Alcotest.fail "comments not skipped"

let test_lexer_operators () =
  match kinds "<= >= == != << >> && || ++ --" with
  | [ Token.Le; Token.Ge; Token.Eq; Token.Ne; Token.Shl; Token.Shr; Token.And_and;
      Token.Or_or; Token.Plus_plus; Token.Minus_minus; Token.Eof ] ->
    ()
  | _ -> Alcotest.fail "operators"

let test_lexer_string_escapes () =
  match kinds {|"a\nb\"c"|} with
  | [ Token.Str_lit "a\nb\"c"; Token.Eof ] -> ()
  | _ -> Alcotest.fail "string escapes"

let test_lexer_line_numbers () =
  let tokens = Lexer.tokenize "a\nb\nc" in
  let lines = List.map (fun t -> t.Token.line) tokens in
  Alcotest.(check (list int)) "lines" [ 1; 2; 3; 3 ] lines

let test_lexer_errors () =
  let expect_error s =
    match Lexer.tokenize s with
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.failf "expected lexer error on %S" s
  in
  expect_error "\"unterminated";
  expect_error "'a";
  expect_error "@";
  expect_error "/* unterminated"

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parser_precedence () =
  match Parser.parse_expr "1 + 2 * 3" with
  | Ast.Binop (Ast.Add, Ast.Int_lit 1, Ast.Binop (Ast.Mul, Ast.Int_lit 2, Ast.Int_lit 3))
    -> ()
  | _ -> Alcotest.fail "precedence"

let test_parser_comparison_precedence () =
  match Parser.parse_expr "a + 1 < b && c" with
  | Ast.Binop (Ast.Land, Ast.Binop (Ast.Lt, _, _), Ast.Var "c") -> ()
  | _ -> Alcotest.fail "comparison under &&"

let test_parser_assign_right_assoc () =
  match Parser.parse_expr "a = b = 1" with
  | Ast.Assign (Ast.Lvar "a", Ast.Assign (Ast.Lvar "b", Ast.Int_lit 1)) -> ()
  | _ -> Alcotest.fail "assignment associativity"

let test_parser_negative_fold () =
  match Parser.parse_expr "-5" with
  | Ast.Int_lit (-5) -> ()
  | _ -> Alcotest.fail "negative literal folding"

let test_parser_incr_sugar () =
  match Parser.parse_expr "i++" with
  | Ast.Assign (Ast.Lvar "i", Ast.Binop (Ast.Add, Ast.Var "i", Ast.Int_lit 1)) -> ()
  | _ -> Alcotest.fail "i++ sugar"

let test_parser_cast () =
  match Parser.parse_expr "(uid_t)x" with
  | Ast.Cast (Ast.Tuid, Ast.Var "x") -> ()
  | _ -> Alcotest.fail "cast"

let test_parser_for_desugar () =
  let prog = Parser.parse "int main(void) { int s = 0; for (int i = 0; i < 3; i++) { s = s + i; } return s; }" in
  match Ast.find_func prog "main" with
  | Some f ->
    let rec has_while = function
      | [] -> false
      | Ast.Swhile _ :: _ -> true
      | Ast.Sblock b :: rest -> has_while b || has_while rest
      | _ :: rest -> has_while rest
    in
    Alcotest.(check bool) "desugared to while" true (has_while f.Ast.body)
  | None -> Alcotest.fail "main missing"

let test_parser_continue_in_for_rejected () =
  match
    Parser.parse "int main(void) { for (;1;) { continue; } return 0; }"
  with
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.fail "continue in for must be rejected"

let test_parser_continue_in_nested_while_ok () =
  match
    Parser.parse
      "int main(void) { for (;1;) { while (1) { continue; } break; } return 0; }"
  with
  | _ -> ()
  | exception Parser.Error _ -> Alcotest.fail "continue binds to inner while"

let test_parser_global_forms () =
  let prog =
    Parser.parse
      {|
        int counter = 3;
        uid_t worker = 33;
        char banner[16] = "hello";
        int table[4] = {1, 2, 3, 4};
        char buf[64];
      |}
  in
  Alcotest.(check int) "globals" 5 (List.length (Ast.globals prog))

let test_parser_errors () =
  let expect_error s =
    match Parser.parse s with
    | exception Parser.Error _ -> ()
    | _ -> Alcotest.failf "expected parse error on %S" s
  in
  expect_error "int main(void) { return 1 }";
  expect_error "int main(void) { 1 + ; }";
  expect_error "int;";
  expect_error "int main(void) { 3 = x; }";
  expect_error "int a[0];"

(* Pretty-print / reparse roundtrip. *)
let test_pretty_roundtrip () =
  let source =
    {|
      uid_t worker_uid = 33;
      char buf[32] = "hi";
      int helper(int a, char *s) {
        int i = 0;
        while (i < a) {
          if (s[i] == 'x' || a > 10) {
            i = i + 2;
          } else {
            i++;
          }
        }
        return i;
      }
      int main(void) {
        uid_t u = getuid();
        if (u == worker_uid) {
          return helper(3, buf);
        }
        return -1;
      }
    |}
  in
  let ast1 = Parser.parse source in
  let printed = Pretty.program ast1 in
  let ast2 = Parser.parse printed in
  Alcotest.(check bool) "stable" true (ast2 = Parser.parse (Pretty.program ast2));
  Alcotest.(check bool) "roundtrip" true (ast1 = ast2)

(* ------------------------------------------------------------------ *)
(* Typechecker                                                         *)
(* ------------------------------------------------------------------ *)

let check_ok source =
  match Typecheck.check (Parser.parse source) with
  | Ok t -> t
  | Error (e :: _) -> Alcotest.failf "unexpected type error: %a" Typecheck.pp_error e
  | Error [] -> Alcotest.fail "empty error list"

let check_err source =
  match Typecheck.check (Parser.parse source) with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "expected a type error in %s" source

let test_ty_uid_literal_coercion () =
  let t = check_ok "int main(void) { uid_t u = 0; if (u == 33) { return 1; } return 0; }" in
  (* The literals appear as explicit (uid_t) casts after elaboration. *)
  let found = ref 0 in
  let rec scan_expr (e : Tast.texpr) =
    (match Tast.uid_constant_value e with Some _ -> incr found | None -> ());
    match e.Tast.e with
    | Tast.Tunop (_, a) | Tast.Tcast (_, a) | Tast.Tderef a -> scan_expr a
    | Tast.Tbinop (_, a, b) | Tast.Tindex (a, b) -> scan_expr a; scan_expr b
    | Tast.Tassign (lv, a) -> scan_lv lv; scan_expr a
    | Tast.Tcall (_, args) -> List.iter scan_expr args
    | Tast.Taddr_of lv -> scan_lv lv
    | Tast.Tint_lit _ | Tast.Tchar_lit _ | Tast.Tstr_lit _ | Tast.Tvar _ -> ()
  and scan_lv (lv : Tast.tlvalue) =
    match lv.Tast.lv with
    | Tast.TLvar _ -> ()
    | Tast.TLindex (a, b) -> scan_expr a; scan_expr b
    | Tast.TLderef a -> scan_expr a
  and scan_stmt = function
    | Tast.TSexpr e -> scan_expr e
    | Tast.TSdecl (_, _, init) -> Option.iter scan_expr init
    | Tast.TSif (c, a, b) -> scan_expr c; List.iter scan_stmt a; List.iter scan_stmt b
    | Tast.TSwhile (c, b) -> scan_expr c; List.iter scan_stmt b
    | Tast.TSreturn e -> Option.iter scan_expr e
    | Tast.TSbreak | Tast.TScontinue -> ()
    | Tast.TSblock b -> List.iter scan_stmt b
  in
  List.iter (fun f -> List.iter scan_stmt f.Tast.body) t.Tast.tfuncs;
  Alcotest.(check int) "two uid constants" 2 !found

let test_ty_uid_arithmetic_rejected () =
  check_err "int main(void) { uid_t u = getuid(); uid_t v = u + 1; return 0; }";
  check_err "int main(void) { uid_t u = getuid(); int x = u * 2; return 0; }"

let test_ty_uid_int_mixing_rejected () =
  (* A non-literal int cannot silently become a uid_t. *)
  check_err "int main(void) { int x = 5; uid_t u = x; return 0; }";
  check_err "int main(void) { int x = 5; if (getuid() == x) { return 1; } return 0; }"

let test_ty_uid_cast_allowed () =
  ignore (check_ok "int main(void) { int x = 5; uid_t u = (uid_t)x; return (int)u; }")

let test_ty_uid_in_condition_allowed () =
  (* if(!getuid()) - the paper's implicit-constant example must type. *)
  ignore (check_ok "int main(void) { if (!getuid()) { return 1; } return 0; }");
  ignore (check_ok "int main(void) { if (getuid()) { return 1; } return 0; }")

let test_ty_uid_compare_uid_ok () =
  ignore
    (check_ok
       "int main(void) { uid_t a = getuid(); uid_t b = geteuid(); if (a < b) { return 1; } return 0; }")

let test_ty_undefined_and_duplicates () =
  check_err "int main(void) { return x; }";
  check_err "int main(void) { int a = 1; int a = 2; return a; }";
  check_err "int f(void) { return 0; } int f(void) { return 1; } int main(void) { return 0; }";
  check_err "int main(void) { return missing(); }"

let test_ty_call_arity_and_args () =
  check_err "int f(int a) { return a; } int main(void) { return f(); }";
  check_err "int main(void) { return setuid(5, 6); }";
  ignore (check_ok "int main(void) { return setuid(0); }")

let test_ty_return_discipline () =
  check_err "void f(void) { return 1; } int main(void) { return 0; }";
  check_err "int f(void) { return; } int main(void) { return 0; }"

let test_ty_break_outside_loop () = check_err "int main(void) { break; return 0; }"

let test_ty_pointer_rules () =
  ignore
    (check_ok
       "int main(void) { char buf[8]; char *p = buf; p[0] = 'x'; *p = 'y'; return (int)buf[0]; }");
  check_err "int main(void) { int x = 1; return *x; }";
  check_err "int main(void) { char buf[4]; char *p = buf; int *q = p; return 0; }"

let test_ty_string_assign_to_char_ptr () =
  ignore (check_ok {|int main(void) { char *p = "hey"; return (int)p[0]; }|})

let test_ty_void_var_rejected () = check_err "int main(void) { void v; return 0; }"

let test_ty_global_initializers () =
  check_err {|char small[2] = "toolong"; int main(void) { return 0; }|};
  check_err "int t[2] = {1,2,3}; int main(void) { return 0; }";
  ignore (check_ok "uid_t admins[3] = {0, 33, 1000}; int main(void) { return 0; }")

(* ------------------------------------------------------------------ *)
(* Codegen + execution                                                 *)
(* ------------------------------------------------------------------ *)

let plain_kernel () =
  let fs = Vfs.create () in
  Vfs.mkdir_p fs "/etc";
  Vfs.install fs ~path:"/etc/passwd" (Passwd.serialize Passwd.sample);
  Vfs.install fs ~path:"/etc/motd" "hello, world\n";
  Kernel.create ~variants:1 fs

let run_main ?kernel source =
  let kernel = match kernel with Some k -> k | None -> plain_kernel () in
  let image = Codegen.compile_source source in
  let runner = Runner.create image kernel in
  match Runner.run runner with
  | Runner.Exited status -> (status, kernel, runner)
  | Runner.Faulted fault ->
    Alcotest.failf "program faulted: %a" Nv_vm.Cpu.pp_fault fault
  | Runner.Blocked_on_accept -> Alcotest.fail "unexpected accept block"
  | Runner.Out_of_fuel -> Alcotest.fail "out of fuel"

let exit_of source =
  let status, _, _ = run_main source in
  status

let test_gen_arith () =
  Alcotest.(check int) "6*7" 42 (exit_of "int main(void) { return 6 * 7; }");
  Alcotest.(check int) "div" 5 (exit_of "int main(void) { return 17 / 3; }");
  Alcotest.(check int) "mod" 2 (exit_of "int main(void) { return 17 % 3; }");
  Alcotest.(check int) "bits" ((0xF0 lxor 0x0F) lor 0x100)
    (exit_of "int main(void) { return (0xF0 ^ 0x0F) | 0x100; }");
  Alcotest.(check int) "shift" 40 (exit_of "int main(void) { return (5 << 3); }")

let test_gen_negative_exit () =
  Alcotest.(check int) "-3" (-3) (exit_of "int main(void) { return -3; }")

let test_gen_control_flow () =
  Alcotest.(check int) "if else" 1
    (exit_of "int main(void) { int x = 5; if (x > 3) { return 1; } else { return 2; } }");
  Alcotest.(check int) "while sum" 55
    (exit_of
       "int main(void) { int s = 0; int i = 1; while (i <= 10) { s = s + i; i++; } return s; }");
  Alcotest.(check int) "for loop" 10
    (exit_of "int main(void) { int s = 0; for (int i = 0; i < 5; i++) { s = s + i; } return s; }");
  Alcotest.(check int) "break" 3
    (exit_of
       "int main(void) { int i = 0; while (1) { if (i == 3) { break; } i++; } return i; }");
  Alcotest.(check int) "continue" 25
    (exit_of
       {|int main(void) {
           int s = 0;
           int i = 0;
           while (i < 10) {
             i++;
             if (i % 2 == 0) { continue; }
             s = s + i;
           }
           return s;
         }|})

let test_gen_short_circuit () =
  (* The right operand must not run when the left decides. *)
  Alcotest.(check int) "and shortcut" 7
    (exit_of
       {|int g = 7;
         int bump(void) { g = 99; return 1; }
         int main(void) { if (0 && bump()) { return 1; } return g; }|});
  Alcotest.(check int) "or shortcut" 7
    (exit_of
       {|int g = 7;
         int bump(void) { g = 99; return 1; }
         int main(void) { if (1 || bump()) { return g; } return 1; }|})

let test_gen_functions () =
  Alcotest.(check int) "fib" 55
    (exit_of
       {|int fib(int n) {
           if (n < 2) { return n; }
           return fib(n - 1) + fib(n - 2);
         }
         int main(void) { return fib(10); }|});
  Alcotest.(check int) "multi-arg order" 7
    (exit_of
       {|int sub(int a, int b) { return a - b; }
         int main(void) { return sub(10, 3); }|});
  Alcotest.(check int) "five args" 15
    (exit_of
       {|int sum5(int a, int b, int c, int d, int e) { return a + b + c + d + e; }
         int main(void) { return sum5(1, 2, 3, 4, 5); }|})

let test_gen_globals_and_arrays () =
  Alcotest.(check int) "global init" 3 (exit_of "int g = 3; int main(void) { return g; }");
  Alcotest.(check int) "global update" 8
    (exit_of "int g = 3; int main(void) { g = g + 5; return g; }");
  Alcotest.(check int) "array sum" 10
    (exit_of
       {|int t[4] = {1, 2, 3, 4};
         int main(void) {
           int s = 0;
           for (int i = 0; i < 4; i++) { s = s + t[i]; }
           return s;
         }|});
  Alcotest.(check int) "char array" 104
    (exit_of {|char msg[8] = "hi"; int main(void) { return (int)msg[0]; }|})

let test_gen_pointers () =
  Alcotest.(check int) "pointer write" 9
    (exit_of
       {|int cell = 1;
         int main(void) { int *p = &cell; *p = 9; return cell; }|});
  Alcotest.(check int) "pointer arith" 30
    (exit_of
       {|int t[3] = {10, 20, 30};
         int main(void) { int *p = t; p = p + 2; return *p; }|});
  Alcotest.(check int) "char pointer walk" 3
    (exit_of
       {|char s[8] = "abc";
         int main(void) {
           char *p = s;
           int n = 0;
           while (*p != '\0') { n++; p = p + 1; }
           return n;
         }|})

let test_gen_locals_shadowing () =
  Alcotest.(check int) "inner scope" 5
    (exit_of
       {|int main(void) {
           int x = 5;
           {
             int x = 9;
             x = x + 1;
           }
           return x;
         }|})

let test_gen_runtime_strings () =
  let source =
    Runtime.with_runtime
      {|int main(void) {
          char buf[32];
          strcpy(buf, "hello");
          if (strlen(buf) != 5) { return 1; }
          if (strcmp(buf, "hello") != 0) { return 2; }
          if (strcmp(buf, "hellp") >= 0) { return 3; }
          if (!starts_with(buf, "hel")) { return 4; }
          if (find_char(buf, 0, 'l') != 2) { return 5; }
          char num[16];
          itoa(12345, num);
          if (atoi(num) != 12345) { return 6; }
          if (atoi("-42") != -42) { return 7; }
          return 0;
        }|}
  in
  Alcotest.(check int) "string suite" 0 (exit_of source)

let test_gen_syscall_io () =
  let source =
    Runtime.with_runtime
      {|int main(void) {
          int fd = sys_open("/etc/motd", 0);
          if (fd < 0) { return 1; }
          char buf[64];
          int n = sys_read(fd, buf, 63);
          buf[n] = '\0';
          sys_close(fd);
          write_str(1, buf);
          return 0;
        }|}
  in
  let status, kernel, _ = run_main source in
  Alcotest.(check int) "exit" 0 status;
  Alcotest.(check string) "echoed" "hello, world\n" (Kernel.stdout_contents kernel)

let test_gen_getuid_setuid () =
  let source =
    {|int main(void) {
        uid_t me = getuid();
        if (me != 0) { return 1; }
        if (seteuid(33) != 0) { return 2; }
        if (geteuid() != 33) { return 3; }
        if (seteuid(0) != 0) { return 4; }
        return 0;
      }|}
  in
  Alcotest.(check int) "uid dance" 0 (exit_of source)

let test_gen_getpwnam () =
  let source =
    Runtime.with_runtime
      {|int main(void) {
          uid_t www = getpwnam_uid("www");
          if (www != 33) { return 1; }
          uid_t alice = getpwnam_uid("alice");
          if (alice != 1000) { return 2; }
          uid_t nobody = getpwnam_uid("mallory");
          if (nobody != (uid_t)(-1)) { return 3; }
          return 0;
        }|}
  in
  Alcotest.(check int) "getpwnam" 0 (exit_of source)

let test_gen_accept_resume () =
  let source =
    Runtime.with_runtime
      {|int main(void) {
          int fd = sys_accept(3);
          char buf[32];
          int n = sys_read(fd, buf, 31);
          buf[n] = '\0';
          write_str(fd, "echo:");
          write_str(fd, buf);
          sys_close(fd);
          return 0;
        }|}
  in
  let kernel = plain_kernel () in
  let image = Codegen.compile_source source in
  let runner = Runner.create image kernel in
  (match Runner.run runner with
  | Runner.Blocked_on_accept -> ()
  | _ -> Alcotest.fail "expected block on accept");
  let conn = Kernel.connect kernel in
  Nv_os.Socket.client_send conn "ping";
  (match Runner.run runner with
  | Runner.Exited 0 -> ()
  | _ -> Alcotest.fail "expected clean exit");
  Alcotest.(check string) "echoed" "echo:ping" (Nv_os.Socket.client_recv conn)

let test_gen_buffer_overflow_corrupts_neighbour () =
  (* The non-control-data shape: an unchecked strcpy into a global
     buffer overwrites the adjacent global. This must work in the
     unprotected baseline for the attack study to be meaningful. *)
  let source =
    Runtime.with_runtime
      {|char small[8];
        int sentinel = 7;
        int main(void) {
          strcpy(small, "AAAAAAAAAAAAAAAA");
          if (sentinel == 7) { return 0; }
          return 1;
        }|}
  in
  Alcotest.(check int) "sentinel clobbered" 1 (exit_of source)

let test_gen_wild_pointer_faults () =
  let image = Codegen.compile_source "int main(void) { int *p = (int*)3; return *p; }" in
  let runner = Runner.create image (plain_kernel ()) in
  match Runner.run runner with
  | Runner.Faulted (Nv_vm.Cpu.Segfault _) -> ()
  | _ -> Alcotest.fail "expected segfault"

let test_gen_missing_main () =
  match Codegen.compile_source "int helper(void) { return 0; }" with
  | exception Codegen.Error _ -> ()
  | _ -> Alcotest.fail "expected missing-main error"

let test_gen_symbols_exported () =
  let image =
    Codegen.compile_source "uid_t worker_uid = 33; char reqbuf[64]; int main(void) { return 0; }"
  in
  Alcotest.(check bool) "worker_uid symbol" true
    (List.mem_assoc "worker_uid" image.Nv_vm.Image.symbols);
  Alcotest.(check bool) "reqbuf symbol" true
    (List.mem_assoc "reqbuf" image.Nv_vm.Image.symbols);
  Alcotest.(check bool) "main symbol" true
    (List.mem_assoc "main" image.Nv_vm.Image.symbols)

(* Property: pretty-printing then reparsing is the identity on random
   expression trees (the printer is fully parenthesizing, so no
   precedence information can be lost). *)
let expr_gen : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun v -> Ast.Int_lit v) (int_range (-1000) 1000);
        map (fun c -> Ast.Char_lit c) (char_range 'a' 'z');
        oneofl [ Ast.Var "x"; Ast.Var "y"; Ast.Var "buf" ];
        map (fun s -> Ast.Str_lit s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 6));
      ]
  in
  let unop = oneofl [ Ast.Neg; Ast.Lnot; Ast.Bnot ] in
  let binop =
    oneofl
      [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Band; Ast.Bor; Ast.Bxor;
        Ast.Shl; Ast.Shr; Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Land;
        Ast.Lor ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else begin
        let sub = self (depth - 1) in
        frequency
          [
            (2, leaf);
            (2, map2 (fun op e -> match (op, e) with
                  | Ast.Neg, Ast.Int_lit v -> Ast.Int_lit (-v) (* parser folds *)
                  | _ -> Ast.Unop (op, e)) unop sub);
            (4, map3 (fun op a b -> Ast.Binop (op, a, b)) binop sub sub);
            (2, map2 (fun a b -> Ast.Index (a, b)) (oneofl [ Ast.Var "buf" ]) sub);
            (1, map (fun e -> Ast.Deref e) sub);
            (1, map (fun e -> Ast.Cast (Ast.Tuid, e)) sub);
            (1, map2 (fun a b -> Ast.Call ("f", [ a; b ])) sub sub);
            (1, map (fun e -> Ast.Assign (Ast.Lvar "x", e)) sub);
          ]
      end)
    3

let prop_pretty_parse_roundtrip =
  QCheck.Test.make ~name:"parse (pretty e) = e for random expressions" ~count:500
    (QCheck.make ~print:Pretty.expr expr_gen)
    (fun e ->
      match Parser.parse_expr (Pretty.expr e) with
      | parsed -> parsed = e
      | exception _ -> false)

(* ------------------------------------------------------------------ *)
(* UID inference (the Splint-style dataflow analysis of Section 4)     *)
(* ------------------------------------------------------------------ *)

let infer source = Uid_infer.infer (Parser.parse source)

let names inferred =
  List.map
    (fun { Uid_infer.scope; name } ->
      match scope with None -> "::" ^ name | Some f -> f ^ "::" ^ name)
    inferred

let test_infer_from_getuid () =
  let inferred =
    infer "int main(void) { int me = (int)0; me = (int)0; return 0; }"
  in
  Alcotest.(check (list string)) "nothing without sources" [] (names inferred)

let test_infer_assignment_source () =
  (* The paper's example: a variable storing the result of getuid. The
     programmer wrote int; the analysis recovers it. Note getuid()
     cannot typecheck into an int variable directly, so the idiomatic
     untyped pattern goes through a cast. *)
  let inferred =
    infer
      {|int main(void) {
          int me = (int)getuid();
          return 0;
        }|}
  in
  (* Cast to int launders the type; the analysis is about variables
     that hold uid_t-typed data. *)
  Alcotest.(check (list string)) "int cast launders" [] (names inferred)

let test_infer_param_sink () =
  (* A variable passed to setuid is a UID (the paper's second seed). In
     the untyped idiom the program fails to typecheck, so the analysis
     runs on the surface syntax before checking. *)
  let inferred =
    infer
      {|int main(void) {
          int target = 0;
          setuid(target);
          return 0;
        }|}
  in
  Alcotest.(check (list string)) "setuid argument" [ "main::target" ] (names inferred)

let test_infer_propagates_through_assignment () =
  let inferred =
    infer
      {|int main(void) {
          int a = 0;
          int b = 0;
          setuid(a);
          b = a;
          return 0;
        }|}
  in
  Alcotest.(check bool) "a inferred" true (List.mem "main::a" (names inferred))

let test_infer_comparison_propagation () =
  let inferred =
    infer
      {|int main(void) {
          int threshold = 1000;
          setuid(threshold);
          int probe = 5;
          if (probe == threshold) { return 1; }
          return 0;
        }|}
  in
  let names = names inferred in
  Alcotest.(check bool) "threshold" true (List.mem "main::threshold" names);
  Alcotest.(check bool) "probe via comparison" true (List.mem "main::probe" names)

let test_infer_user_function_param () =
  let inferred =
    infer
      {|int audit(int who) { return who; }
        int main(void) {
          int me = 0;
          setuid(me);
          audit(me);
          return 0;
        }|}
  in
  let names = names inferred in
  Alcotest.(check bool) "callee param inferred" true (List.mem "audit::who" names)

let test_infer_function_return () =
  let inferred =
    infer
      {|int pick(void) {
          int chosen = 0;
          setuid(chosen);
          return chosen;
        }
        int main(void) {
          int got = pick();
          return 0;
        }|}
  in
  Alcotest.(check bool) "caller variable via return" true
    (List.mem "main::got" (names inferred))

let test_infer_globals () =
  let inferred =
    infer
      {|int stored = 0;
        int main(void) {
          setuid(stored);
          return 0;
        }|}
  in
  Alcotest.(check bool) "global inferred" true (List.mem "::stored" (names inferred))

let test_infer_apply_rewrites_types () =
  let program =
    Parser.parse
      {|int worker = 33;
        int main(void) {
          setuid(worker);
          return 0;
        }|}
  in
  let rewritten = Uid_infer.apply program in
  (match Ast.globals rewritten with
  | [ { Ast.gname = "worker"; gty = Ast.Tuid; _ } ] -> ()
  | _ -> Alcotest.fail "global not rewritten to uid_t");
  (* The rewritten program now satisfies the typechecker's UID
     discipline and can be fed to the transformer. *)
  match Typecheck.check rewritten with
  | Ok _ -> ()
  | Error (e :: _) -> Alcotest.failf "rewritten program fails: %a" Typecheck.pp_error e
  | Error [] -> Alcotest.fail "rewritten program fails"

let test_infer_declared_uid_not_reported () =
  let inferred = infer "uid_t u = 0; int main(void) { setuid(u); return 0; }" in
  Alcotest.(check (list string)) "already typed" [] (names inferred)

(* Property: compiled arithmetic agrees with OCaml arithmetic. *)
let prop_gen_arith_agrees =
  QCheck.Test.make ~name:"compiled arithmetic matches host arithmetic" ~count:60
    QCheck.(pair (int_range (-1000) 1000) (int_range (-1000) 1000))
    (fun (a, b) ->
      let source =
        Printf.sprintf
          "int main(void) { int a = %d; int b = %d; return a * 3 + b - (a / 7); }" a b
      in
      let expected = (a * 3) + b - (a / 7) in
      (* Exit status is a 32-bit word; compare signed. *)
      exit_of source = expected)

let () =
  Alcotest.run "nv_minic"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "hex and char" `Quick test_lexer_hex_and_char;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "string escapes" `Quick test_lexer_string_escapes;
          Alcotest.test_case "line numbers" `Quick test_lexer_line_numbers;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "comparison precedence" `Quick test_parser_comparison_precedence;
          Alcotest.test_case "assign right assoc" `Quick test_parser_assign_right_assoc;
          Alcotest.test_case "negative fold" `Quick test_parser_negative_fold;
          Alcotest.test_case "incr sugar" `Quick test_parser_incr_sugar;
          Alcotest.test_case "cast" `Quick test_parser_cast;
          Alcotest.test_case "for desugar" `Quick test_parser_for_desugar;
          Alcotest.test_case "continue in for rejected" `Quick
            test_parser_continue_in_for_rejected;
          Alcotest.test_case "continue in nested while ok" `Quick
            test_parser_continue_in_nested_while_ok;
          Alcotest.test_case "global forms" `Quick test_parser_global_forms;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "pretty roundtrip" `Quick test_pretty_roundtrip;
        ]
        @ qsuite [ prop_pretty_parse_roundtrip ] );
      ( "typecheck",
        [
          Alcotest.test_case "uid literal coercion" `Quick test_ty_uid_literal_coercion;
          Alcotest.test_case "uid arithmetic rejected" `Quick test_ty_uid_arithmetic_rejected;
          Alcotest.test_case "uid/int mixing rejected" `Quick test_ty_uid_int_mixing_rejected;
          Alcotest.test_case "uid cast allowed" `Quick test_ty_uid_cast_allowed;
          Alcotest.test_case "uid condition allowed" `Quick test_ty_uid_in_condition_allowed;
          Alcotest.test_case "uid compare uid" `Quick test_ty_uid_compare_uid_ok;
          Alcotest.test_case "undefined/duplicates" `Quick test_ty_undefined_and_duplicates;
          Alcotest.test_case "call arity" `Quick test_ty_call_arity_and_args;
          Alcotest.test_case "return discipline" `Quick test_ty_return_discipline;
          Alcotest.test_case "break outside loop" `Quick test_ty_break_outside_loop;
          Alcotest.test_case "pointer rules" `Quick test_ty_pointer_rules;
          Alcotest.test_case "string to char*" `Quick test_ty_string_assign_to_char_ptr;
          Alcotest.test_case "void var" `Quick test_ty_void_var_rejected;
          Alcotest.test_case "global initializers" `Quick test_ty_global_initializers;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "arithmetic" `Quick test_gen_arith;
          Alcotest.test_case "negative exit" `Quick test_gen_negative_exit;
          Alcotest.test_case "control flow" `Quick test_gen_control_flow;
          Alcotest.test_case "short circuit" `Quick test_gen_short_circuit;
          Alcotest.test_case "functions" `Quick test_gen_functions;
          Alcotest.test_case "globals and arrays" `Quick test_gen_globals_and_arrays;
          Alcotest.test_case "pointers" `Quick test_gen_pointers;
          Alcotest.test_case "shadowing" `Quick test_gen_locals_shadowing;
          Alcotest.test_case "runtime strings" `Quick test_gen_runtime_strings;
          Alcotest.test_case "syscall io" `Quick test_gen_syscall_io;
          Alcotest.test_case "getuid/setuid" `Quick test_gen_getuid_setuid;
          Alcotest.test_case "getpwnam" `Quick test_gen_getpwnam;
          Alcotest.test_case "accept resume" `Quick test_gen_accept_resume;
          Alcotest.test_case "overflow corrupts neighbour" `Quick
            test_gen_buffer_overflow_corrupts_neighbour;
          Alcotest.test_case "wild pointer faults" `Quick test_gen_wild_pointer_faults;
          Alcotest.test_case "missing main" `Quick test_gen_missing_main;
          Alcotest.test_case "symbols exported" `Quick test_gen_symbols_exported;
        ]
        @ qsuite [ prop_gen_arith_agrees ] );
      ( "uid-infer",
        [
          Alcotest.test_case "no false positives" `Quick test_infer_from_getuid;
          Alcotest.test_case "int cast launders" `Quick test_infer_assignment_source;
          Alcotest.test_case "setuid argument" `Quick test_infer_param_sink;
          Alcotest.test_case "assignment propagation" `Quick
            test_infer_propagates_through_assignment;
          Alcotest.test_case "comparison propagation" `Quick test_infer_comparison_propagation;
          Alcotest.test_case "user function param" `Quick test_infer_user_function_param;
          Alcotest.test_case "function return" `Quick test_infer_function_return;
          Alcotest.test_case "globals" `Quick test_infer_globals;
          Alcotest.test_case "apply rewrites types" `Quick test_infer_apply_rewrites_types;
          Alcotest.test_case "declared uid not reported" `Quick
            test_infer_declared_uid_not_reported;
        ] );
    ]
