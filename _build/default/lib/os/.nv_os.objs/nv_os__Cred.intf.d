lib/os/cred.mli: Format Nv_vm
