(** The Table 3 experiment: throughput and latency of the four
    deployment configurations under unsaturated and saturated load. *)

type cell = { unsat : Webbench.result; sat : Webbench.result }

type row = {
  config : Nv_httpd.Deploy.config;
  demand : Measure.sample;  (** mean measured per-request demand *)
  cell : cell;
}

val run :
  ?requests:int -> ?seed:int -> ?cost:Cost_model.t -> unit -> (row list, string) result
(** Build each configuration, measure [requests] real requests through
    it, then simulate both load points. *)

val render : row list -> string
(** The paper-style table (configurations as columns, throughput and
    latency rows for each load level), followed by a demand summary. *)

val paper_values : (string * (string * float) list) list
(** The published Table 3 numbers, for EXPERIMENTS.md comparisons:
    [(metric, [(config, value); ...])]. *)
