(* Tests for nv_httpd: server behaviour across all four deployment
   configurations, HTTP codec, site content, transformation report. *)

open Nv_httpd
module Nsystem = Nv_core.Nsystem
module Monitor = Nv_core.Monitor
module Vfs = Nv_os.Vfs

let build config =
  match Deploy.build config with Ok sys -> sys | Error e -> Alcotest.fail e

let serve sys path =
  match Nsystem.serve sys (Http.get path) with
  | Nsystem.Served raw -> (
    match Http.parse_response raw with
    | Ok response -> response
    | Error e -> Alcotest.failf "bad response: %s" e)
  | Nsystem.Stopped outcome ->
    Alcotest.failf "server stopped: %s"
      (match outcome with
      | Monitor.Exited n -> Printf.sprintf "exit %d" n
      | Monitor.Alarm r -> Nv_core.Alarm.to_string r
      | Monitor.Blocked_on_accept -> "blocked"
      | Monitor.Out_of_fuel -> "fuel")

(* ------------------------------------------------------------------ *)
(* HTTP codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_http_get_render () =
  Alcotest.(check string) "request" "GET /a/b HTTP/1.0\r\n\r\n" (Http.get "/a/b")

let test_http_parse () =
  match Http.parse_response "HTTP/1.0 200 OK\r\nContent-Length: 5\r\n\r\nhello" with
  | Ok { Http.status = 200; content_length = Some 5; body = "hello" } -> ()
  | Ok _ -> Alcotest.fail "fields wrong"
  | Error e -> Alcotest.fail e

let test_http_parse_errors () =
  (match Http.parse_response "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "no separator should fail");
  match Http.parse_response "HTTP/1.0 abc\r\n\r\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad status should fail"

(* ------------------------------------------------------------------ *)
(* Site                                                                *)
(* ------------------------------------------------------------------ *)

let test_site_sizes () =
  List.iter
    (fun file ->
      Alcotest.(check int) (file.Site.name ^ " size") file.Site.size
        (String.length (Site.content file)))
    Site.files

let test_site_install () =
  let vfs = Vfs.create () in
  Site.install vfs;
  List.iter
    (fun file ->
      Alcotest.(check bool) (file.Site.name ^ " installed") true
        (Vfs.exists vfs ("/var/www/" ^ file.Site.name)))
    Site.files

let test_site_mix_paths_resolve () =
  let vfs = Vfs.create () in
  Site.install vfs;
  Array.iter
    (fun path ->
      let path = if path = "/" then "/index.html" else path in
      Alcotest.(check bool) (path ^ " exists") true (Vfs.exists vfs ("/var/www" ^ path)))
    Site.request_mix

(* ------------------------------------------------------------------ *)
(* Server behaviour per configuration                                  *)
(* ------------------------------------------------------------------ *)

let index_file = List.hd Site.files

let check_basic_behaviour config =
  let sys = build config in
  (* Root path serves the index. *)
  let response = serve sys "/" in
  Alcotest.(check int) "index status" 200 response.Http.status;
  Alcotest.(check string) "index body" (Site.content index_file) response.Http.body;
  (* Direct file. *)
  let response = serve sys "/small.html" in
  Alcotest.(check int) "small status" 200 response.Http.status;
  Alcotest.(check int) "content length header matches" (String.length response.Http.body)
    (Option.value ~default:(-1) response.Http.content_length);
  (* A file larger than the server's 4 KiB buffer streams correctly. *)
  let response = serve sys "/large.html" in
  Alcotest.(check int) "large status" 200 response.Http.status;
  Alcotest.(check int) "large size" 16384 (String.length response.Http.body);
  (* Missing file. *)
  let response = serve sys "/missing.html" in
  Alcotest.(check int) "404" 404 response.Http.status;
  (* Bad method. *)
  (match Nsystem.serve sys "POST / HTTP/1.0\r\n\r\n" with
  | Nsystem.Served raw -> (
    match Http.parse_response raw with
    | Ok r -> Alcotest.(check int) "405" 405 r.Http.status
    | Error e -> Alcotest.fail e)
  | Nsystem.Stopped _ -> Alcotest.fail "server died on POST");
  (* Garbage request. *)
  (match Nsystem.serve sys "NONSENSE\r\n\r\n" with
  | Nsystem.Served raw -> (
    match Http.parse_response raw with
    | Ok r -> Alcotest.(check int) "400" 400 r.Http.status
    | Error e -> Alcotest.fail e)
  | Nsystem.Stopped _ -> Alcotest.fail "server died on garbage");
  (* Traversal is harmless while the UID is intact: the worker cannot
     read the 0600 file. *)
  let response = serve sys "/../../secret/shadow" in
  Alcotest.(check int) "traversal denied" 404 response.Http.status;
  sys

let test_config1_behaviour () = ignore (check_basic_behaviour Deploy.Unmodified_single)
let test_config2_behaviour () = ignore (check_basic_behaviour Deploy.Transformed_single)
let test_config3_behaviour () = ignore (check_basic_behaviour Deploy.Two_variant_address)
let test_config4_behaviour () = ignore (check_basic_behaviour Deploy.Two_variant_uid)

let test_query_string_stripped () =
  let sys = build Deploy.Unmodified_single in
  let response = serve sys "/small.html?token=letmein" in
  Alcotest.(check int) "200 with query" 200 response.Http.status

let test_access_log_written () =
  let sys = build Deploy.Two_variant_uid in
  ignore (serve sys "/");
  ignore (serve sys "/missing.html");
  match Vfs.contents (Nsystem.kernel sys |> Nv_os.Kernel.vfs) ~path:"/var/log/httpd.log" with
  | Ok log ->
    let contains s sub =
      let n = String.length sub in
      let rec scan i = i + n <= String.length s && (String.sub s i n = sub || scan (i + 1)) in
      scan 0
    in
    Alcotest.(check bool) "200 logged" true (contains log "GET / 200");
    Alcotest.(check bool) "404 logged" true (contains log "GET /missing.html 404")
  | Error _ -> Alcotest.fail "log missing"

let test_many_requests_stable () =
  let sys = build Deploy.Two_variant_uid in
  for _ = 1 to 20 do
    let r = serve sys "/index.html" in
    Alcotest.(check int) "status" 200 r.Http.status
  done

let test_worker_uid_resolved_per_variant () =
  let sys = build Deploy.Two_variant_uid in
  ignore (serve sys "/");
  let monitor = Nsystem.monitor sys in
  let stored i =
    let loaded = Monitor.loaded monitor i in
    Nv_vm.Memory.load_word loaded.Nv_vm.Image.memory
      (Nv_vm.Image.abs_symbol loaded "worker_uid")
  in
  Alcotest.(check int) "variant 0 canonical" 33 (stored 0);
  Alcotest.(check int) "variant 1 reexpressed" (33 lxor 0x7FFFFFFF) (stored 1)

(* ------------------------------------------------------------------ *)
(* Transformation report (experiment X1)                               *)
(* ------------------------------------------------------------------ *)

let test_transform_report_categories () =
  match Deploy.transform_report () with
  | Error e -> Alcotest.fail e
  | Ok report ->
    let open Nv_transform.Uid_transform in
    Alcotest.(check bool) "constants found" true (report.constants > 0);
    Alcotest.(check bool) "cc calls inserted" true (report.cc_calls > 0);
    Alcotest.(check bool) "uid scrubbed from log" true (report.log_scrubs > 0);
    Alcotest.(check bool) "nontrivial total" true (total_changes report >= 10)

let test_deploy_metadata () =
  Alcotest.(check int) "four configs" 4 (List.length Deploy.all);
  Alcotest.(check (list string)) "names"
    [ "config1"; "config2"; "config3"; "config4" ]
    (List.map Deploy.name Deploy.all);
  Alcotest.(check int) "config4 variants" 2
    (Nv_core.Variation.count (Deploy.variation Deploy.Two_variant_uid))

let () =
  Alcotest.run "nv_httpd"
    [
      ( "http",
        [
          Alcotest.test_case "get render" `Quick test_http_get_render;
          Alcotest.test_case "parse" `Quick test_http_parse;
          Alcotest.test_case "parse errors" `Quick test_http_parse_errors;
        ] );
      ( "site",
        [
          Alcotest.test_case "sizes" `Quick test_site_sizes;
          Alcotest.test_case "install" `Quick test_site_install;
          Alcotest.test_case "mix resolves" `Quick test_site_mix_paths_resolve;
        ] );
      ( "server",
        [
          Alcotest.test_case "config1" `Quick test_config1_behaviour;
          Alcotest.test_case "config2" `Quick test_config2_behaviour;
          Alcotest.test_case "config3" `Quick test_config3_behaviour;
          Alcotest.test_case "config4" `Quick test_config4_behaviour;
          Alcotest.test_case "query string" `Quick test_query_string_stripped;
          Alcotest.test_case "access log" `Quick test_access_log_written;
          Alcotest.test_case "many requests" `Quick test_many_requests_stable;
          Alcotest.test_case "per-variant worker uid" `Quick
            test_worker_uid_resolved_per_variant;
        ] );
      ( "transform-report",
        [
          Alcotest.test_case "categories" `Quick test_transform_report_categories;
          Alcotest.test_case "deploy metadata" `Quick test_deploy_metadata;
        ] );
    ]
