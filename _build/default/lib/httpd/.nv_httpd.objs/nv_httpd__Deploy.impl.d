lib/httpd/deploy.ml: Httpd_source Nv_core Nv_minic Nv_transform Site
