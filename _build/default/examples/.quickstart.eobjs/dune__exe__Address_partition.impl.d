examples/address_partition.ml: Format Nv_core Nv_minic Nv_vm Printf
