examples/quickstart.ml: Format Nv_core Nv_transform Nv_vm Printf
