(* Lexical tokens of mini-C, each carrying its source line for error
   reporting. *)

type kind =
  | Ident of string
  | Int_lit of int
  | Char_lit of char
  | Str_lit of string
  (* keywords *)
  | Kw_int
  | Kw_char
  | Kw_void
  | Kw_uid_t
  | Kw_gid_t
  | Kw_if
  | Kw_else
  | Kw_while
  | Kw_for
  | Kw_return
  | Kw_break
  | Kw_continue
  (* punctuation *)
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Semi
  | Comma
  (* operators *)
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Pipe
  | Caret
  | Tilde
  | Shl
  | Shr
  | Bang
  | Assign
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And_and
  | Or_or
  | Plus_plus
  | Minus_minus
  | Eof

type t = { kind : kind; line : int }

let keyword_of_string = function
  | "int" -> Some Kw_int
  | "char" -> Some Kw_char
  | "void" -> Some Kw_void
  | "uid_t" -> Some Kw_uid_t
  | "gid_t" -> Some Kw_gid_t
  | "if" -> Some Kw_if
  | "else" -> Some Kw_else
  | "while" -> Some Kw_while
  | "for" -> Some Kw_for
  | "return" -> Some Kw_return
  | "break" -> Some Kw_break
  | "continue" -> Some Kw_continue
  | _ -> None

let describe = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int_lit n -> Printf.sprintf "integer %d" n
  | Char_lit c -> Printf.sprintf "char %C" c
  | Str_lit s -> Printf.sprintf "string %S" s
  | Kw_int -> "'int'"
  | Kw_char -> "'char'"
  | Kw_void -> "'void'"
  | Kw_uid_t -> "'uid_t'"
  | Kw_gid_t -> "'gid_t'"
  | Kw_if -> "'if'"
  | Kw_else -> "'else'"
  | Kw_while -> "'while'"
  | Kw_for -> "'for'"
  | Kw_return -> "'return'"
  | Kw_break -> "'break'"
  | Kw_continue -> "'continue'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Semi -> "';'"
  | Comma -> "','"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Star -> "'*'"
  | Slash -> "'/'"
  | Percent -> "'%'"
  | Amp -> "'&'"
  | Pipe -> "'|'"
  | Caret -> "'^'"
  | Tilde -> "'~'"
  | Shl -> "'<<'"
  | Shr -> "'>>'"
  | Bang -> "'!'"
  | Assign -> "'='"
  | Eq -> "'=='"
  | Ne -> "'!='"
  | Lt -> "'<'"
  | Le -> "'<='"
  | Gt -> "'>'"
  | Ge -> "'>='"
  | And_and -> "'&&'"
  | Or_or -> "'||'"
  | Plus_plus -> "'++'"
  | Minus_minus -> "'--'"
  | Eof -> "end of input"
