lib/minic/runner.mli: Nv_os Nv_vm
