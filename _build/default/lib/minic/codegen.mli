(** Code generation from typed mini-C to relocatable VM images.

    Calling convention: arguments are evaluated left to right and
    pushed, so parameter [i] of an [n]-ary function lives at
    [fp + 8 + 4*(n-1-i)]; results return in [r0]. The frame pointer is
    [r12], the stack pointer [r13]. Built-in functions (the syscall
    wrappers listed in {!Typecheck.builtins}) compile to the [syscall]
    instruction with the ABI of {!Nv_os.Syscall}.

    Every global (and every interned string literal) gets a symbol in
    the produced image, which is how the attack library locates the
    buffers and UID variables it corrupts. *)

exception Error of string

val compile : Tast.tprogram -> Nv_vm.Image.t
(** Compile a checked program. The image's entry stub calls [main]
    and passes its result to [sys_exit]. Raises {!Error} if [main] is
    missing or has parameters. *)

val compile_source : string -> Nv_vm.Image.t
(** Convenience: parse, typecheck (raising {!Error} with the first type
    error) and compile. *)
