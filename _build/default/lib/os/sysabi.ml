module Cpu = Nv_vm.Cpu
module Memory = Nv_vm.Memory

type raw = { number : int; args : Nv_vm.Word.t array }

let of_cpu cpu =
  { number = Cpu.reg cpu 0; args = Array.init 5 (fun i -> Cpu.reg cpu (i + 1)) }

let set_result cpu value = Cpu.set_reg cpu 0 value

let retry_syscall cpu = Cpu.set_pc cpu (Cpu.pc cpu - Nv_vm.Isa.instr_size)

let max_path = 4096

let read_string memory ~addr = Memory.load_cstring memory ~addr ~max_len:max_path

let read_bytes memory ~addr ~len =
  if len <= 0 then "" else Bytes.to_string (Memory.load_bytes memory ~addr ~len)

let write_bytes memory ~addr data =
  if String.length data > 0 then
    Memory.store_bytes memory ~addr (Bytes.of_string data)
