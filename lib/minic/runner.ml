module Cpu = Nv_vm.Cpu
module Word = Nv_vm.Word
module Memory = Nv_vm.Memory
module Image = Nv_vm.Image
module Kernel = Nv_os.Kernel
module Syscall = Nv_os.Syscall
module Sysabi = Nv_os.Sysabi

type outcome = Exited of int | Faulted of Nv_vm.Cpu.fault | Blocked_on_accept | Out_of_fuel

type t = { loaded : Image.loaded; kernel : Kernel.t; mutable syscalls : int }

let create ?(base = 0x10000) ?(size = 1 lsl 20) ?(tag = 0) image kernel =
  { loaded = Image.load image ~base ~size ~tag; kernel; syscalls = 0 }

let kernel t = t.kernel

let loaded t = t.loaded

let instructions_retired t = Cpu.instructions_retired t.loaded.Image.cpu

let syscalls t = t.syscalls

let err = Word.of_signed (-1)

(* Dispatch one trapped syscall; returns [None] to continue running,
   [Some outcome] to stop. *)
let dispatch t =
  let cpu = t.loaded.Image.cpu in
  let memory = t.loaded.Image.memory in
  let { Sysabi.number; args } = Sysabi.of_cpu cpu in
  t.syscalls <- t.syscalls + 1;
  let k = t.kernel in
  let return value =
    Sysabi.set_result cpu value;
    None
  in
  let chunk_for_variant = function
    | Kernel.Shared_data data -> data
    | Kernel.Per_variant chunks -> if Array.length chunks > 0 then chunks.(0) else ""
  in
  match number with
  | n when n = Syscall.sys_exit -> Some (Exited (Word.to_signed args.(0)))
  | n when n = Syscall.sys_read ->
    let count, data = Kernel.sys_read k ~fd:(Word.to_signed args.(0)) ~len:(Word.to_signed args.(2)) in
    if count > 0 then Sysabi.write_bytes memory ~addr:args.(1) (chunk_for_variant data);
    return (Word.of_signed count)
  | n when n = Syscall.sys_write ->
    let len = Word.to_signed args.(2) in
    let bytes = Sysabi.read_bytes memory ~addr:args.(1) ~len in
    return (Word.of_signed (Kernel.sys_write k ~fd:(Word.to_signed args.(0)) ~data:(Kernel.Shared_data bytes)))
  | n when n = Syscall.sys_open ->
    let path = Sysabi.read_string memory ~addr:args.(0) in
    return (Word.of_signed (Kernel.sys_open k ~path ~flags:(Word.to_signed args.(1))))
  | n when n = Syscall.sys_close ->
    return (Word.of_signed (Kernel.sys_close k ~fd:(Word.to_signed args.(0))))
  | n when n = Syscall.sys_accept ->
    let fd = Kernel.sys_accept k ~fd:(Word.to_signed args.(0)) in
    if fd = Kernel.eagain then begin
      Sysabi.retry_syscall cpu;
      Some Blocked_on_accept
    end
    else return (Word.of_signed fd)
  | n when n = Syscall.sys_getuid -> return (Kernel.sys_getuid k)
  | n when n = Syscall.sys_geteuid -> return (Kernel.sys_geteuid k)
  | n when n = Syscall.sys_getgid -> return (Kernel.sys_getgid k)
  | n when n = Syscall.sys_getegid -> return (Kernel.sys_getegid k)
  | n when n = Syscall.sys_setuid -> return (Word.of_signed (Kernel.sys_setuid k ~uid:args.(0)))
  | n when n = Syscall.sys_seteuid -> return (Word.of_signed (Kernel.sys_seteuid k ~uid:args.(0)))
  | n when n = Syscall.sys_setgid -> return (Word.of_signed (Kernel.sys_setgid k ~gid:args.(0)))
  | n when n = Syscall.sys_setegid -> return (Word.of_signed (Kernel.sys_setegid k ~gid:args.(0)))
  | n when n = Syscall.sys_uid_value -> return args.(0)
  | n when n = Syscall.sys_cond_chk -> return args.(0)
  | n when n = Syscall.sys_cc_eq -> return (if args.(0) = args.(1) then 1 else 0)
  | n when n = Syscall.sys_cc_neq -> return (if args.(0) <> args.(1) then 1 else 0)
  | n when n = Syscall.sys_cc_lt -> return (if Word.lt_unsigned args.(0) args.(1) then 1 else 0)
  | n when n = Syscall.sys_cc_leq -> return (if not (Word.lt_unsigned args.(1) args.(0)) then 1 else 0)
  | n when n = Syscall.sys_cc_gt -> return (if Word.lt_unsigned args.(1) args.(0) then 1 else 0)
  | n when n = Syscall.sys_cc_geq -> return (if not (Word.lt_unsigned args.(0) args.(1)) then 1 else 0)
  | _ -> return err

let run ?(fuel = 10_000_000) t =
  let cpu = t.loaded.Image.cpu in
  let deadline = Cpu.instructions_retired cpu + fuel in
  let rec loop () =
    let remaining = deadline - Cpu.instructions_retired cpu in
    if remaining <= 0 then Out_of_fuel
    else begin
      match Cpu.run cpu ~fuel:remaining with
      | Cpu.Out_of_fuel -> Out_of_fuel
      | Cpu.Trapped Cpu.Halt_trap -> Exited 0
      | Cpu.Trapped (Cpu.Fault_trap fault) -> Faulted fault
      | Cpu.Trapped Cpu.Syscall_trap -> (
        match dispatch t with
        | exception Memory.Fault { addr; access } ->
          (* A bad pointer handed to the kernel kills the process, as a
             bad copy_from_user would. *)
          Faulted (Cpu.Segfault { addr; access })
        | None -> loop ()
        | Some outcome -> outcome)
    end
  in
  loop ()
