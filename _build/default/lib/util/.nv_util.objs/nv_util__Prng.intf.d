lib/util/prng.mli:
