module Vfs = Nv_os.Vfs
module Passwd = Nv_os.Passwd
module Kernel = Nv_os.Kernel

type t = {
  kernel : Kernel.t;
  monitor : Monitor.t;
  variation : Variation.t;
  supervisor : Supervisor.t option;
}

let install_diversified vfs ~variation ~path ~reexpress_file content =
  Vfs.install vfs ~path content;
  Array.iter
    (fun spec ->
      let f = spec.Variation.uid.Reexpression.encode in
      match reexpress_file ~f content with
      | Ok diversified ->
        Vfs.install vfs ~path:(Printf.sprintf "%s-%d" path spec.Variation.index) diversified
      | Error message -> invalid_arg ("Nsystem.standard_vfs: " ^ message))
    variation.Variation.variants

let standard_vfs ?(users = 0) ~variation () =
  let vfs = Vfs.create () in
  Vfs.mkdir_p vfs "/etc";
  (* The sample entries stay first so the server worker ("www") is
     found in the guest's first passwd read even when a large synthetic
     population is appended behind it. *)
  let entries =
    if users = 0 then Passwd.sample else Passwd.sample @ Passwd.generate users
  in
  let passwd_text = Passwd.serialize entries in
  let group_text = Passwd.serialize_group Passwd.sample_groups in
  let unshared = variation.Variation.unshared_paths in
  if List.mem "/etc/passwd" unshared then
    install_diversified vfs ~variation ~path:"/etc/passwd" ~reexpress_file:Passwd.reexpress
      passwd_text
  else Vfs.install vfs ~path:"/etc/passwd" passwd_text;
  if List.mem "/etc/group" unshared then
    install_diversified vfs ~variation ~path:"/etc/group"
      ~reexpress_file:Passwd.reexpress_group group_text
  else Vfs.install vfs ~path:"/etc/group" group_text;
  Vfs.install vfs
    ~attrs:{ Vfs.mode = 0o600; owner = 0; group = 0 }
    ~path:"/secret/shadow" "root:$6$salt$hashhashhash:19000:0:99999:7:::\n";
  Vfs.install vfs
    ~attrs:{ Vfs.mode = 0o666; owner = 0; group = 0 }
    ~path:"/var/log/httpd.log" "";
  vfs

let create ?vfs ?parallel ?engine ?segment_size ?recover ~variation images =
  let vfs = match vfs with Some v -> v | None -> standard_vfs ~variation () in
  let kernel = Kernel.create ~variants:(Variation.count variation) vfs in
  let monitor = Monitor.create ?parallel ?engine ?segment_size ~kernel ~variation images in
  let supervisor =
    Option.map (fun config -> Supervisor.create ~config monitor) recover
  in
  { kernel; monitor; variation; supervisor }

let of_one_image ?vfs ?parallel ?engine ?segment_size ?recover ~variation image =
  create ?vfs ?parallel ?engine ?segment_size ?recover ~variation
    (Array.make (Variation.count variation) image)

let kernel t = t.kernel

let monitor t = t.monitor

let supervisor t = t.supervisor

let variation t = t.variation

let metrics t = Monitor.metrics t.monitor

let connect t = Kernel.connect t.kernel

(* All stepping goes through the supervisor when one is attached, so
   recovery applies uniformly to [run], [serve] and everything built
   on them. *)
let run ?fuel t =
  match t.supervisor with
  | Some s -> Supervisor.run ?fuel s
  | None -> Monitor.run ?fuel t.monitor

type serve_result = Served of string | Stopped of Monitor.outcome

let serve ?fuel t request =
  (* Make sure the server is parked on accept before connecting. *)
  let parked =
    match run ?fuel t with
    | Monitor.Blocked_on_accept -> Ok ()
    | other -> Error other
  in
  match parked with
  | Error outcome -> Stopped outcome
  | Ok () -> (
    let conn = Kernel.connect t.kernel in
    Nv_os.Socket.client_send conn request;
    Nv_os.Socket.client_close conn;
    match run ?fuel t with
    | Monitor.Blocked_on_accept -> Served (Nv_os.Socket.client_recv conn)
    | outcome -> Stopped outcome)
