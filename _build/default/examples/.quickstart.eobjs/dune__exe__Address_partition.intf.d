examples/address_partition.mli:
