lib/vm/cpu.mli: Format Memory Word
