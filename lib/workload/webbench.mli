(** The WebBench-style closed-loop load generator over the
    discrete-event simulator (Table 3's measurement harness).

    Each simulated client repeatedly issues a request and waits for the
    full response before issuing the next (closed loop, zero think
    time, like WebBench's client engines). A request's lifecycle:
    half-RTT to the server, FIFO service on the single server CPU for
    its measured demand, transmission of the response through the
    shared NIC, half-RTT back. The paper's two operating points are 1
    client (unsaturated) and 15 clients — 3 machines x 5 engines
    (saturated). *)

type load = {
  clients : int;
  duration_s : float;  (** measurement window in simulated seconds *)
}

val unsaturated : load
(** 1 client, 30 simulated seconds. *)

val saturated : load
(** 15 clients, 30 simulated seconds. *)

type result = {
  requests_completed : int;
  throughput_kb_s : float;  (** response payload KB per second *)
  latency_ms : float;  (** mean request latency *)
  latency_p50_ms : float;
  latency_p99_ms : float;
  cpu_utilization : float;
  rendezvous_total : int;
      (** monitor rendezvous cost of the completed requests (sum of
          each request's measured rendezvous count) *)
}

val pp_result : Format.formatter -> result -> unit

val run :
  ?seed:int ->
  ?cost:Cost_model.t ->
  variants:int ->
  samples:Measure.sample array ->
  load ->
  result
(** Simulate the load against a server whose per-request demands are
    drawn (round-robin) from [samples], measured on a [variants]-variant
    deployment. *)
