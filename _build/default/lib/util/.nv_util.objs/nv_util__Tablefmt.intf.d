lib/util/tablefmt.mli:
