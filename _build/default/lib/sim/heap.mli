(** Binary min-heap keyed by [(float, int)] pairs.

    The integer component is a tie-breaking sequence number so that
    events scheduled at the same simulated instant pop in FIFO order,
    which keeps the discrete-event engine deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> key:float -> seq:int -> 'a -> unit
(** Insert an element with the given priority key and tie-breaker. *)

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum element, or [None] if empty. *)

val peek : 'a t -> (float * int * 'a) option
(** Return the minimum element without removing it. *)
