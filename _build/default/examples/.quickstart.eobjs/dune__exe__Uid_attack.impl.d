examples/uid_attack.ml: Format List Nv_attacks Nv_core Nv_httpd String
