(* Surface abstract syntax of mini-C.

   Mini-C is the guest language of the reproduction: a small, typed
   subset of C with a first-class [uid_t] type. The paper's UID data
   variation is a source-to-source transformation over this AST
   (implemented in the nv_transform library). *)

type ty =
  | Tvoid
  | Tint
  | Tchar
  | Tuid  (* uid_t / gid_t: the diversified data type *)
  | Tptr of ty
  | Tarray of ty * int

type unop =
  | Neg  (* -e *)
  | Lnot  (* !e *)
  | Bnot  (* ~e *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor

type expr =
  | Int_lit of int
  | Char_lit of char
  | Str_lit of string
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of lvalue * expr
  | Call of string * expr list
  | Index of expr * expr  (* e[i] *)
  | Deref of expr  (* *e *)
  | Addr_of of lvalue  (* &lv *)
  | Cast of ty * expr

and lvalue =
  | Lvar of string
  | Lindex of expr * expr
  | Lderef of expr

type stmt =
  | Sexpr of expr
  | Sdecl of ty * string * expr option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list

type init =
  | Init_none  (* zeroed *)
  | Init_int of int
  | Init_string of string
  | Init_array of int list

type global = { gname : string; gty : ty; ginit : init }

type func = {
  fname : string;
  ret : ty;
  params : (ty * string) list;
  body : stmt list;
}

type decl = Dglobal of global | Dfunc of func

type program = decl list

(* Helpers shared by the transformer and analyses. *)

let rec ty_equal a b =
  match (a, b) with
  | Tvoid, Tvoid | Tint, Tint | Tchar, Tchar | Tuid, Tuid -> true
  | Tptr a, Tptr b -> ty_equal a b
  | Tarray (a, n), Tarray (b, m) -> n = m && ty_equal a b
  | (Tvoid | Tint | Tchar | Tuid | Tptr _ | Tarray _), _ -> false

let is_comparison = function
  | Eq | Ne | Lt | Le | Gt | Ge -> true
  | Add | Sub | Mul | Div | Mod | Band | Bor | Bxor | Shl | Shr | Land | Lor -> false

let globals program =
  List.filter_map (function Dglobal g -> Some g | Dfunc _ -> None) program

let funcs program =
  List.filter_map (function Dfunc f -> Some f | Dglobal _ -> None) program

let find_func program name = List.find_opt (fun f -> f.fname = name) (funcs program)
