(* Classic SPSC ring over a power-of-two slot array: [head] is the
   consumer's next position, [tail] the producer's, both monotonically
   increasing. The producer publishes a slot with the [tail] store; the
   consumer releases one with the [head] store. OCaml atomics are
   sequentially consistent, so the plain slot write/read on either side
   is ordered by the atomic counter it pairs with (write slot, then
   store tail / load tail, then read slot) — no fences needed.

   [head_cache]/[tail_cache] are each touched by exactly one domain
   (producer caches the consumer's index and vice versa), so the
   mutable fields race with nothing. *)

type 'a t = {
  slots : 'a option array;
  mask : int;
  head : int Atomic.t;  (* next position to pop; consumer-owned *)
  tail : int Atomic.t;  (* next position to fill; producer-owned *)
  mutable head_cache : int;  (* producer's last-seen head *)
  mutable tail_cache : int;  (* consumer's last-seen tail *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Spsc.create: capacity must be >= 1";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    slots = Array.make !cap None;
    mask = !cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    head_cache = 0;
    tail_cache = 0;
  }

let capacity t = t.mask + 1

let try_push t v =
  let tail = Atomic.get t.tail in
  if tail - t.head_cache > t.mask then t.head_cache <- Atomic.get t.head;
  if tail - t.head_cache > t.mask then false
  else begin
    t.slots.(tail land t.mask) <- Some v;
    Atomic.set t.tail (tail + 1);
    true
  end

let try_pop t =
  let head = Atomic.get t.head in
  if head >= t.tail_cache then t.tail_cache <- Atomic.get t.tail;
  if head >= t.tail_cache then None
  else begin
    let i = head land t.mask in
    let v = t.slots.(i) in
    t.slots.(i) <- None;
    Atomic.set t.head (head + 1);
    v
  end

let length t = max 0 (Atomic.get t.tail - Atomic.get t.head)
