module Monitor = Nv_core.Monitor
module Nsystem = Nv_core.Nsystem

type sample = {
  instructions : int;
  rendezvous : int;
  request_bytes : int;
  response_bytes : int;
}

let pp_sample ppf s =
  Format.fprintf ppf "instr=%d rendezvous=%d req=%dB resp=%dB" s.instructions s.rendezvous
    s.request_bytes s.response_bytes

let profile ?(requests = 40) ?(seed = 7) ?(paths = Nv_httpd.Site.request_mix) sys =
  let prng = Nv_util.Prng.create ~seed in
  let monitor = Nsystem.monitor sys in
  let samples = ref [] in
  let rec loop i =
    if i >= requests then Ok (Array.of_list (List.rev !samples))
    else begin
      let path = Nv_util.Prng.pick prng paths in
      let request = Nv_httpd.Http.get path in
      let instr0 = Monitor.instructions_retired monitor in
      let rdv0 = Monitor.rendezvous_count monitor in
      match Nsystem.serve sys request with
      | Nsystem.Served response ->
        samples :=
          {
            instructions = Monitor.instructions_retired monitor - instr0;
            rendezvous = Monitor.rendezvous_count monitor - rdv0;
            request_bytes = String.length request;
            response_bytes = String.length response;
          }
          :: !samples;
        loop (i + 1)
      | Nsystem.Stopped outcome ->
        Error
          (Format.asprintf "system stopped during profiling: %s"
             (match outcome with
             | Monitor.Exited n -> Printf.sprintf "exited %d" n
             | Monitor.Alarm reason -> Nv_core.Alarm.to_string reason
             | Monitor.Blocked_on_accept -> "blocked"
             | Monitor.Out_of_fuel -> "out of fuel"))
    end
  in
  loop 0

let mean_demand samples =
  let n = max 1 (Array.length samples) in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 samples in
  {
    instructions = sum (fun s -> s.instructions) / n;
    rendezvous = sum (fun s -> s.rendezvous) / n;
    request_bytes = sum (fun s -> s.request_bytes) / n;
    response_bytes = sum (fun s -> s.response_bytes) / n;
  }
