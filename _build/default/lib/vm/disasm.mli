(** Disassembly of encoded code regions, for debugging and for the
    examples' trace output. *)

val instruction : Memory.t -> addr:int -> (int * Isa.t, string) result
(** Decode the instruction at [addr]; returns [(tag, instruction)] or a
    human-readable error. *)

val region : Memory.t -> start:int -> count:int -> string
(** Render [count] instructions starting at [start], one per line, each
    prefixed with its absolute address and tag. Undecodable slots are
    rendered as [??]. *)
