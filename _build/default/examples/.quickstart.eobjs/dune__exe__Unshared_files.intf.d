examples/unshared_files.mli:
