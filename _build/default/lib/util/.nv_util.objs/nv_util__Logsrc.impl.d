lib/util/logsrc.ml: Logs Logs_fmt
