lib/os/syscall.mli:
