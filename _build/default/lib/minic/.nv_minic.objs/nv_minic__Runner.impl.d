lib/minic/runner.ml: Array Nv_os Nv_vm
