lib/vm/asm.ml: Array Buffer Bytes Char Hashtbl Image Isa List Printf String Word
