(** The case-study web server (mini-C source) — the Apache analogue of
    Section 4.

    A static-file HTTP/1.0 server with the privilege-separation
    pattern: it resolves its worker identity from [/etc/passwd] at
    startup (through the unshared-files machinery when deployed with
    the UID variation), drops its effective UID to the worker for each
    request, and regains root between requests.

    Two vulnerabilities are planted deliberately, mirroring the threat
    models the paper evaluates:

    - {b CWE-787 global overflow (non-control-data)}: the request URL
      is copied into a fixed 64-byte buffer with [strcpy]; the global
      that follows it is [worker_uid]. A 64-byte URL writes the copy's
      terminating NUL over the UID's low byte — with the canonical
      value 33 ([0x00000021]) this yields exactly UID 0 (root), the
      Chen-et-al-style UID corruption the paper's variation targets.
    - {b stack smash}: the query-string "auth token" is copied into a
      32-byte stack buffer with [strcpy], reaching the saved frame
      pointer and return address — the absolute-address /
      code-injection vector used to exercise address-space partitioning
      (Figure 1) and instruction tagging.

    The document-root join also allows [..] traversal, so a corrupted
    (root) effective UID lets "GET /../secret/shadow" read a file mode
    0600. *)

val source : ?log_uid:bool -> unit -> string
(** Full program text (runtime library included). [log_uid] (default
    true) controls whether the error path writes the effective UID into
    the access log — the Apache behaviour from Section 4 that forces
    the log-scrubbing workaround; the UID transformer removes it. *)

val url_buffer_size : int
(** 64: the size of the vulnerable URL buffer; a URL of exactly this
    length zeroes [worker_uid]'s low byte. *)

val token_buffer_size : int
(** 32: the size of the vulnerable stack token buffer. *)

val worker_user : string
(** "www": the passwd entry the server drops privileges to. *)
