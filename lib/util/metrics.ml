(* Registry-backed counters/gauges/histograms. Everything here is
   deterministic: histograms keep a fixed-size reservoir maintained by
   Vitter's Algorithm R with a PRNG seeded from the metric's full name,
   so a given observation sequence always yields the same reservoir, and
   timers take their clock as a function so simulated time can drive
   them. *)

let reservoir_capacity = 4096

type counter = { mutable c : int }

type gauge = { mutable g : float }

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  samples : float array;  (* uniform reservoir (Algorithm R) once full *)
  mutable filled : int;
  rng : Prng.t;  (* seeded from the metric name: deterministic *)
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { table : (string, metric) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let global = create ()

(* ------------------------------------------------------------------ *)
(* Scopes and registration                                             *)
(* ------------------------------------------------------------------ *)

type scope = { reg : t; prefix : string }

let scope reg name = { reg; prefix = (if name = "" then "" else name ^ ".") }

let sub s name = { s with prefix = s.prefix ^ name ^ "." }

let registry s = s.reg

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

let get_or_create s name ~make ~unwrap =
  let full = s.prefix ^ name in
  match Hashtbl.find_opt s.reg.table full with
  | Some existing -> (
    match unwrap existing with
    | Some m -> m
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is already registered as a %s" full
           (kind_name existing)))
  | None ->
    let wrapped = make full in
    Hashtbl.replace s.reg.table full wrapped;
    (match unwrap wrapped with Some m -> m | None -> assert false)

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let counter s name =
  get_or_create s name
    ~make:(fun _ -> Counter { c = 0 })
    ~unwrap:(function Counter c -> Some c | _ -> None)

let incr c = c.c <- c.c + 1

let add c n = c.c <- c.c + n

let counter_value c = c.c

(* ------------------------------------------------------------------ *)
(* Gauges                                                              *)
(* ------------------------------------------------------------------ *)

let gauge s name =
  get_or_create s name
    ~make:(fun _ -> Gauge { g = 0.0 })
    ~unwrap:(function Gauge g -> Some g | _ -> None)

let set_gauge g v = g.g <- v

let max_gauge g v = if v > g.g then g.g <- v

let gauge_value g = g.g

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let histogram s name =
  get_or_create s name
    ~make:(fun full ->
      Histogram
        {
          count = 0;
          sum = 0.0;
          min_v = infinity;
          max_v = neg_infinity;
          samples = Array.make reservoir_capacity 0.0;
          filled = 0;
          rng = Prng.create ~seed:(0x5EED lxor Hashtbl.hash full);
        })
    ~unwrap:(function Histogram h -> Some h | _ -> None)

(* Vitter's Algorithm R: the i-th observation (1-based) replaces a
   uniformly chosen reservoir slot with probability capacity/i, so at
   any point the reservoir is a uniform sample of everything observed —
   not just the most recent window. *)
let observe h v =
  if h.filled < reservoir_capacity then begin
    h.samples.(h.filled) <- v;
    h.filled <- h.filled + 1
  end
  else begin
    let j = Prng.int h.rng (h.count + 1) in
    if j < reservoir_capacity then h.samples.(j) <- v
  end;
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v

let histogram_count h = h.count

let histogram_sum h = h.sum

let histogram_percentile h p =
  if h.filled = 0 then 0.0
  else Stats.percentile (Array.sub h.samples 0 h.filled) p

let histogram_p999 h = histogram_percentile h 99.9

(* ------------------------------------------------------------------ *)
(* Timers                                                              *)
(* ------------------------------------------------------------------ *)

type timer = { clock : unit -> float; hist : histogram }

let timer s name ~clock = { clock; hist = histogram s name }

let timer_histogram tm = tm.hist

let start tm =
  let t0 = tm.clock () in
  let stopped = ref false in
  fun () ->
    if not !stopped then begin
      stopped := true;
      observe tm.hist (Float.max 0.0 (tm.clock () -. t0))
    end

let time tm f =
  let stop = start tm in
  Fun.protect ~finally:stop f

(* ------------------------------------------------------------------ *)
(* Lookup                                                              *)
(* ------------------------------------------------------------------ *)

let find_counter reg full =
  match Hashtbl.find_opt reg.table full with
  | Some (Counter c) -> Some c.c
  | Some _ | None -> None

let find_gauge reg full =
  match Hashtbl.find_opt reg.table full with
  | Some (Gauge g) -> Some g.g
  | Some _ | None -> None

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let counters_under reg ~prefix =
  Hashtbl.fold
    (fun name metric acc ->
      match metric with
      | Counter c when starts_with ~prefix name ->
        (String.sub name (String.length prefix) (String.length name - String.length prefix), c.c)
        :: acc
      | _ -> acc)
    reg.table []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type value =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of value list
    | Obj of (string * value) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04X" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let number_to_string x =
    if Float.is_integer x && Float.abs x < 1e15 then
      Printf.sprintf "%.0f" x
    else Printf.sprintf "%.12g" x

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num x -> Buffer.add_string buf (number_to_string x)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 256 in
    write buf v;
    Buffer.contents buf

  exception Parse_error of string

  let of_string text =
    let pos = ref 0 in
    let len = String.length text in
    let fail message = raise (Parse_error (Printf.sprintf "%s at offset %d" message !pos)) in
    let peek () = if !pos < len then Some text.[!pos] else None in
    let advance () = Stdlib.incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some got when got = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word value =
      if !pos + String.length word <= len && String.sub text !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        value
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '/' -> Buffer.add_char buf '/'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'b' -> Buffer.add_char buf '\b'
          | Some 'f' -> Buffer.add_char buf '\012'
          | _ -> fail "unsupported escape");
          advance ();
          go ()
        | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let number_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c when number_char c -> true | _ -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub text start (!pos - start)) with
      | Some x -> x
      | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              fields ((key, v) :: acc)
            | Some '}' ->
              advance ();
              List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> len then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error message -> Error message

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let sorted_metrics reg =
  Hashtbl.fold (fun name metric acc -> (name, metric) :: acc) reg.table []
  |> List.sort compare

let histogram_summary h =
  let pct p = if h.filled = 0 then 0.0 else histogram_percentile h p in
  Json.Obj
    [
      ("count", Json.Num (float_of_int h.count));
      ("sum", Json.Num h.sum);
      ("min", Json.Num (if h.count = 0 then 0.0 else h.min_v));
      ("max", Json.Num (if h.count = 0 then 0.0 else h.max_v));
      ("p50", Json.Num (pct 50.0));
      ("p90", Json.Num (pct 90.0));
      ("p99", Json.Num (pct 99.0));
      ("p999", Json.Num (pct 99.9));
    ]

let to_json_value reg =
  let metrics = sorted_metrics reg in
  let pick f = List.filter_map f metrics in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (pick (function
            | name, Counter c -> Some (name, Json.Num (float_of_int c.c))
            | _ -> None)) );
      ( "gauges",
        Json.Obj
          (pick (function name, Gauge g -> Some (name, Json.Num g.g) | _ -> None)) );
      ( "histograms",
        Json.Obj
          (pick (function
            | name, Histogram h -> Some (name, histogram_summary h)
            | _ -> None)) );
    ]

let to_json reg = Json.to_string (to_json_value reg)

let to_text reg =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, metric) ->
      match metric with
      | Counter c -> Buffer.add_string buf (Printf.sprintf "counter %s %d\n" name c.c)
      | Gauge g ->
        Buffer.add_string buf (Printf.sprintf "gauge %s %s\n" name (Json.number_to_string g.g))
      | Histogram h ->
        Buffer.add_string buf
          (Printf.sprintf
             "histogram %s count=%d sum=%s min=%s max=%s p50=%s p90=%s p99=%s p999=%s\n"
             name h.count
             (Json.number_to_string h.sum)
             (Json.number_to_string (if h.count = 0 then 0.0 else h.min_v))
             (Json.number_to_string (if h.count = 0 then 0.0 else h.max_v))
             (Json.number_to_string (histogram_percentile h 50.0))
             (Json.number_to_string (histogram_percentile h 90.0))
             (Json.number_to_string (histogram_percentile h 99.0))
             (Json.number_to_string (histogram_percentile h 99.9))))
    (sorted_metrics reg);
  Buffer.contents buf

let dump ?(format = `Text) reg oc =
  match format with
  | `Text -> output_string oc (to_text reg)
  | `Json ->
    output_string oc (to_json reg);
    output_char oc '\n'
