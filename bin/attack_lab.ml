(* attack_lab: run the attack campaign (experiment X2) from the
   command line. *)

open Cmdliner

let attack_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "a"; "attack" ] ~docv:"NAME"
        ~doc:"Run a single attack by name (default: all). Use --list to see names.")

let config_arg =
  let configs =
    List.map (fun c -> (Nv_httpd.Deploy.name c, c)) Nv_httpd.Deploy.all
  in
  Arg.(
    value
    & opt (some (enum configs)) None
    & info [ "c"; "config" ] ~docv:"CONFIG"
        ~doc:"Target configuration (default: all four).")

let list_arg = Arg.(value & flag & info [ "list" ] ~doc:"List attacks and exit.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose" ] ~doc:"Print detailed verdicts, not just labels.")

let parallel_arg =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) (Nv_util.Dompool.env_default ())
    & info [ "parallel" ] ~docv:"on|off"
        ~doc:
          "Run independent attack/configuration cells (and each system's \
           variants) on a domain pool. Defaults to the $(b,NV_PARALLEL) \
           environment variable (1 = on). Verdicts are identical either way.")

let recover_arg =
  Arg.(
    value & flag
    & info [ "recover" ]
        ~doc:
          "Deploy each system with a recovery supervisor (default budget): \
           detected attacks roll back and the server keeps serving, so cells \
           report $(b,RECOVERED) instead of $(b,DETECTED).")

let run attack config list verbose parallel recover =
  if list then begin
    List.iter
      (fun a ->
        Printf.printf "%-22s %s\n" a.Nv_attacks.Campaign.name
          a.Nv_attacks.Campaign.description)
      Nv_attacks.Campaign.attacks;
    exit 0
  end;
  let attacks =
    match attack with
    | None -> Nv_attacks.Campaign.attacks
    | Some name -> (
      match Nv_attacks.Campaign.find name with
      | Some a -> [ a ]
      | None ->
        Printf.eprintf "unknown attack %S (try --list)\n" name;
        exit 2)
  in
  let configs = match config with None -> Nv_httpd.Deploy.all | Some c -> [ c ] in
  let recover = if recover then Some Nv_core.Supervisor.default_config else None in
  let matrix = Nv_attacks.Campaign.run_matrix ~parallel ?recover ~attacks ~configs () in
  print_string (Nv_attacks.Campaign.render_matrix matrix);
  if verbose then
    List.iter
      (fun (a, cells) ->
        List.iter
          (fun (c, v) ->
            Format.printf "%s / %s: %a@." a.Nv_attacks.Campaign.name
              (Nv_httpd.Deploy.name c) Nv_attacks.Campaign.pp_verdict v)
          cells)
      matrix;
  (* Exit nonzero if any attack escalated against the UID variation:
     that would falsify the reproduction's headline claim. *)
  let headline_broken =
    List.exists
      (fun (a, cells) ->
        a.Nv_attacks.Campaign.name <> "baseline-request"
        && List.exists
             (fun (c, v) ->
               c = Nv_httpd.Deploy.Two_variant_uid
               && match v with Nv_attacks.Campaign.Escalated _ -> true | _ -> false)
             cells)
      matrix
  in
  exit (if headline_broken then 1 else 0)

let cmd =
  let doc = "run data-corruption and code-injection attacks against the case-study server" in
  Cmd.v (Cmd.info "attack_lab" ~doc)
    Term.(
      const run $ attack_arg $ config_arg $ list_arg $ verbose_arg $ parallel_arg
      $ recover_arg)

let () = exit (Cmd.eval cmd)
