(** The mini-C runtime library: string helpers, integer conversion,
    buffered output, and a [getpwnam]-style lookup that parses
    [/etc/passwd] through the kernel's file syscalls (and therefore
    through the {e unshared files} mechanism when the file is
    registered as unshared).

    [strcpy] is deliberately unbounded, like its libc namesake: the
    case-study server's vulnerability is an unchecked [strcpy] into a
    fixed buffer that sits next to its stored worker UID, the
    non-control-data attack shape of Chen et al. that the paper's UID
    variation is designed to stop. *)

val source : string
(** Mini-C source text of the runtime. Prepend to a program with
    {!with_runtime}. *)

val with_runtime : string -> string
(** [with_runtime program] is [source ^ program]. *)

val function_names : string list
(** Names defined by the runtime, for tests and the transformer's
    change accounting. *)
