type t = int

let width_mask = 0xFFFFFFFF

let mask x = x land width_mask

let max_value = width_mask

let high_bit = 0x80000000

let to_signed w = if w land high_bit <> 0 then w - 0x1_0000_0000 else w

let of_signed x = mask x

let add a b = mask (a + b)

let sub a b = mask (a - b)

let mul a b = mask (a * b)

let div_signed a b =
  let sb = to_signed b in
  if sb = 0 then raise Division_by_zero;
  of_signed (to_signed a / sb)

let rem_signed a b =
  let sb = to_signed b in
  if sb = 0 then raise Division_by_zero;
  of_signed (to_signed a mod sb)

let logand a b = a land b

let logor a b = a lor b

let logxor a b = a lxor b

let lognot a = mask (lnot a)

let shift_left a n = mask (a lsl (n land 31))

let shift_right_logical a n = a lsr (n land 31)

let shift_right_arith a n = of_signed (to_signed a asr (n land 31))

let lt_signed a b = to_signed a < to_signed b

let lt_unsigned a b = a < b

let byte w i =
  if i < 0 || i > 3 then invalid_arg "Word.byte: index out of range";
  (w lsr (8 * i)) land 0xFF

let set_byte w i b =
  if i < 0 || i > 3 then invalid_arg "Word.set_byte: index out of range";
  let shift = 8 * i in
  (w land lnot (0xFF lsl shift) land width_mask) lor ((b land 0xFF) lsl shift)

let pp ppf w = Format.fprintf ppf "0x%08X" w
