(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that
    simulations, workloads and attack campaigns are reproducible from a
    seed. The generator is splitmix64, which is small, fast and has good
    statistical quality for simulation purposes. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each simulated client / component its own stream. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean, for think
    times and inter-arrival gaps. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
