lib/httpd/httpd_source.ml: Nv_minic Printf
