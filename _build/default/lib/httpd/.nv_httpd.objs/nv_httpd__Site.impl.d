lib/httpd/site.ml: Buffer Char List Nv_os Printf String
