lib/httpd/httpd_source.mli:
