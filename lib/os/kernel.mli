(** The simulated kernel: canonical syscall semantics for one logical
    process (which the monitor runs as N variant replicas).

    The kernel's view of the world is entirely {e canonical}: UIDs are
    un-reexpressed, pointers have already been dereferenced by the
    monitor. Its distinctive N-variant feature is the {e shared /
    unshared file} distinction of Section 3.4: descriptors for shared
    files carry one backing object whose I/O the framework performs
    once, while descriptors for registered unshared paths carry one
    backing file {e per variant} ([path-0], [path-1], ...), and each
    variant's I/O goes to its own diversified copy. *)

type t

type data =
  | Shared_data of string  (** one I/O result distributed to all variants *)
  | Per_variant of string array  (** index i belongs to variant i *)

val create :
  ?metrics:Nv_util.Metrics.t -> ?fd_limit:int -> variants:int -> Vfs.t -> t
(** A process booted as root, with fds 0/1/2 preopened (null stdin,
    captured stdout/stderr) and the listening socket preopened at
    {!listen_fd}. [metrics] is the registry syscall/IO/fd metrics are
    reported into (a fresh private registry by default); it is exposed
    via {!metrics} so the monitor can share it. *)

val listen_fd : int
(** The fd (3) at which the listening socket is preopened; guests pass
    it to [accept]. *)

val metrics : t -> Nv_util.Metrics.t
(** Registry this kernel reports into: [kernel.syscalls],
    [kernel.calls.<name>], [kernel.io.{shared,unshared}_bytes_{in,out}],
    [kernel.fds.open], [kernel.fds.high_water]. *)

val vfs : t -> Vfs.t
val variants : t -> int
val cred : t -> Cred.t
val set_cred : t -> Cred.t -> unit

val listener : t -> Socket.listener
val connect : t -> Socket.conn
(** Client-side: open a new connection to the process's listener. *)

val register_unshared : t -> string -> unit
(** Mark [path] as unshared: subsequent opens of [path] resolve to
    [path-0] .. [path-(n-1)]. The diversified copies must already be
    installed in the VFS. *)

val is_unshared : t -> string -> bool

val stdout_contents : t -> string
val stderr_contents : t -> string

val exit_status : t -> int option
val syscalls_executed : t -> int

val set_trace : t -> ring:Nv_util.Trace.ring -> clock:(unit -> int) -> unit
(** Route every dispatched syscall as a [Kernel_call] event into [ring]
    (timestamped by [clock]) whenever the ring's session is enabled.
    The monitor installs this with its own retired-instruction clock;
    the kernel runs on the coordinating domain only, so the ring is
    single-writer. *)

(** {1 Canonical syscall implementations}

    All return a result word ([-1] i.e. [0xFFFFFFFF] on error) unless
    noted. These are invoked exactly once per rendezvous by the
    monitor. *)

val sys_exit : t -> status:int -> int

val sys_open : t -> path:string -> flags:int -> int
(** Returns a new fd, or [-1]. Unshared paths open every per-variant
    copy; failure of any copy fails the open. *)

val sys_close : t -> fd:int -> int

val sys_read : t -> fd:int -> len:int -> int * data
(** Returns [(count, data)]. For unshared descriptors every variant
    performs its own read on its own diversified file, so each variant
    receives its own byte count and bytes ([count] is variant 0's count
    and [data] is [Per_variant]; the monitor hands variant [i] the
    length of [chunks.(i)] as its result). Diversified copies may
    legitimately differ in length (decimal UID widths differ), which is
    why per-variant counts are essential: the monitor checks syscall
    {e sequences}, not unshared file contents. *)

val sys_write : t -> fd:int -> data:data -> int
(** [Shared_data] is written once; [Per_variant] writes each variant's
    bytes to its own unshared backing file. Returns bytes written. *)

val sys_accept : t -> fd:int -> int
(** [sys_accept t ~fd] accepts on the listening descriptor [fd] (which
    must be {!listen_fd}). Returns a new fd for the oldest pending
    connection, [-1] if [fd] is not the listener or the fd table is
    full, or {!eagain} when no connection is pending (the monitor parks
    the system on this). *)

val eagain : int
(** Distinguished "would block" result (-2 as a word). *)

val sys_getuid : t -> Cred.uid
val sys_geteuid : t -> Cred.uid
val sys_getgid : t -> Cred.gid
val sys_getegid : t -> Cred.gid
val sys_setuid : t -> uid:Cred.uid -> int
val sys_seteuid : t -> uid:Cred.uid -> int
val sys_setgid : t -> gid:Cred.gid -> int
val sys_setegid : t -> gid:Cred.gid -> int

val fd_is_unshared : t -> fd:int -> bool
(** Whether an open descriptor is backed by per-variant unshared files
    (the monitor uses this to decide between checking written bytes
    across variants and letting each variant write its own copy). *)

val conn_of_fd : t -> fd:int -> Socket.conn option
(** The connection behind a socket fd, if any (used by tests and the
    workload driver). *)

(** {1 Checkpointing}

    Used by the supervisor's recovery layer. A snapshot captures
    credentials, the fd table (descriptor kinds, file positions),
    every VFS file's content and attributes, the stdout/stderr
    lengths and the exit status. Live connections are {e not}
    checkpointed: their slots are recorded as free, and {!restore}
    closes any connection open at restore time. The listener's
    pending-accept queue, metrics counters and the syscall count are
    deliberately left untouched (counters stay monotonic across
    rollbacks). *)

type snapshot

val snapshot : t -> snapshot

val restore : t -> snapshot -> int
(** Roll the kernel back to [snap]; returns the number of live
    connections that were closed. A snapshot may be restored any
    number of times. *)
