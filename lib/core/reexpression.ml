module Word = Nv_vm.Word
module Prng = Nv_util.Prng

type form =
  | Linear of { rot : int; key : Word.t }
  | Add31 of Word.t
  | Opaque

type t = {
  name : string;
  form : form;
  encode : Word.t -> Word.t;
  decode : Word.t -> Word.t;
}

(* Rotations built from the masked shifts: Word shift counts are taken
   mod 32, so a shift by [32 - 0] would be a shift by 0 — rotate by 0
   must short-circuit. *)
let rol x k =
  let k = k land 31 in
  if k = 0 then Word.mask x
  else Word.logor (Word.shift_left x k) (Word.shift_right_logical x (32 - k))

let ror x k = rol x (32 - (k land 31))

let low31 x = x land 0x7FFFFFFF

let linear ~rot ~key =
  let rot = rot land 31 and key = Word.mask key in
  let name =
    if rot = 0 then
      if key = 0 then "identity" else Printf.sprintf "xor 0x%08X" key
    else if key = 0 then Printf.sprintf "rol %d" rot
    else Printf.sprintf "rol %d ^ 0x%08X" rot key
  in
  {
    name;
    form = Linear { rot; key };
    encode = (fun u -> Word.logxor (rol u rot) key);
    decode = (fun u -> ror (Word.logxor u key) rot);
  }

let identity = linear ~rot:0 ~key:0

let xor_key ~key = linear ~rot:0 ~key

let rotate ~k = linear ~rot:k ~key:0

let rot_xor ~k ~key = linear ~rot:k ~key

let add_mod31 ~offset =
  let offset = low31 offset in
  {
    name = (if offset = 0 then "identity (+0 mod 2^31)"
            else Printf.sprintf "add 0x%08X mod 2^31" offset);
    form = Add31 offset;
    encode =
      (fun u -> Word.logand u Word.high_bit lor low31 (low31 u + offset));
    decode =
      (fun u -> Word.logand u Word.high_bit lor low31 (low31 u - offset));
  }

let paper_uid_key = 0x7FFFFFFF

let inverse_holds t x = t.decode (t.encode x) = x

let disjoint_at a b x = a.decode x <> b.decode x

(* ------------------------------------------------------------------ *)
(* Machine-checkable witnesses.                                        *)

type verdict = Proven | Refuted of Word.t | Unknown

(* Over GF(2) both rotation and XOR are affine: for a [Linear] form,
   [decode x = R (x ^ key)] where [R] is rotate-right — a linear map.
   A collision between two linear decodes,
     [R_a (x ^ k_a) = R_b (x ^ k_b)],
   rearranges to the linear system
     [(R_a ^ R_b) x = R_a k_a ^ R_b k_b].
   Gaussian elimination decides it exactly: inconsistent means no word
   collides (pointwise disjointness is proven for all 2^32 inputs);
   a solution is a concrete counterexample word. *)
let solve_linear ~rot_a ~key_a ~rot_b ~key_b =
  let cols = Array.init 32 (fun j ->
      Word.logxor (ror (1 lsl j) rot_a) (ror (1 lsl j) rot_b))
  in
  let rhs = Word.logxor (ror key_a rot_a) (ror key_b rot_b) in
  (* Row [i] packs the 32 coefficients of output bit [i] in bits 0..31
     and the right-hand side in bit 32. *)
  let rows =
    Array.init 32 (fun i ->
        let coeffs = ref 0 in
        for j = 0 to 31 do
          if cols.(j) land (1 lsl i) <> 0 then coeffs := !coeffs lor (1 lsl j)
        done;
        !coeffs lor (((rhs lsr i) land 1) lsl 32))
  in
  let pivot_of_col = Array.make 32 (-1) in
  let rank = ref 0 in
  for j = 0 to 31 do
    let r = ref (-1) in
    for i = !rank to 31 do
      if !r = -1 && rows.(i) land (1 lsl j) <> 0 then r := i
    done;
    if !r >= 0 then begin
      let tmp = rows.(!rank) in
      rows.(!rank) <- rows.(!r);
      rows.(!r) <- tmp;
      for i = 0 to 31 do
        if i <> !rank && rows.(i) land (1 lsl j) <> 0 then
          rows.(i) <- rows.(i) lxor rows.(!rank)
      done;
      pivot_of_col.(j) <- !rank;
      incr rank
    end
  done;
  let inconsistent = ref false in
  for i = !rank to 31 do
    if rows.(i) land (1 lsl 32) <> 0 then inconsistent := true
  done;
  if !inconsistent then None
  else begin
    (* Particular solution: free variables 0, each pivot variable takes
       its row's right-hand side. *)
    let x = ref 0 in
    for j = 0 to 31 do
      let p = pivot_of_col.(j) in
      if p >= 0 && rows.(p) land (1 lsl 32) <> 0 then x := !x lor (1 lsl j)
    done;
    Some !x
  end

(* Structured probe set for forms with no closed-form decision: the
   boundary words, both keys, and a deterministic pseudo-random sweep.
   Finding a collision refutes disjointness; exhausting the probes
   proves nothing, so the verdict stays [Unknown]. *)
let sampled_refutation a b =
  let prng = Prng.create ~seed:0x5EED51DE in
  let probe = ref None in
  let try_word x =
    let x = Word.mask x in
    if !probe = None && not (disjoint_at a b x) then probe := Some x
  in
  List.iter try_word
    [ 0; 1; 33; 0x7FFFFFFF; 0x80000000; 0xFFFFFFFF; a.encode 0; b.encode 0 ];
  for bit = 0 to 31 do
    try_word (1 lsl bit)
  done;
  for _ = 1 to 4096 do
    try_word (Int64.to_int (Int64.logand (Prng.bits64 prng) 0xFFFFFFFFL))
  done;
  !probe

let disjointness a b =
  match (a.form, b.form) with
  | Linear { rot = rot_a; key = key_a }, Linear { rot = rot_b; key = key_b }
    -> (
    match solve_linear ~rot_a ~key_a ~rot_b ~key_b with
    | None -> Proven
    | Some x -> if disjoint_at a b x then Unknown else Refuted x)
  | Add31 ca, Add31 cb ->
    (* Bit 31 passes through both decodes; the low halves differ at
       every word exactly when the offsets differ mod 2^31. *)
    if ca = cb then Refuted 0 else Proven
  | _ -> (
    match sampled_refutation a b with Some x -> Refuted x | None -> Unknown)

let selfcheck t =
  let prng = Prng.create ~seed:0x1AEA11 in
  let witness = ref None in
  let probe x =
    let x = Word.mask x in
    if !witness = None then begin
      if not (inverse_holds t x) then witness := Some x
      else
        match t.form with
        | Linear { rot; key } ->
          if t.encode x <> Word.logxor (rol x rot) key then witness := Some x
        | Add31 c ->
          if t.encode x <> Word.logand x Word.high_bit lor low31 (low31 x + c)
          then witness := Some x
        | Opaque -> ()
    end
  in
  List.iter probe [ 0; 1; 33; 0x7FFFFFFF; 0x80000000; 0xFFFFFFFF ];
  for bit = 0 to 31 do
    probe (1 lsl bit)
  done;
  for _ = 1 to 4096 do
    probe (Int64.to_int (Int64.logand (Prng.bits64 prng) 0xFFFFFFFFL))
  done;
  match !witness with None -> Ok () | Some x -> Error x

let all_pairs_disjoint specs =
  let n = Array.length specs in
  let bad = ref None in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if !bad = None then
        match disjointness specs.(i) specs.(j) with
        | Proven -> ()
        | Refuted x -> bad := Some (i, j, Some x)
        | Unknown -> bad := Some (i, j, None)
    done
  done;
  match !bad with None -> Ok () | Some w -> Error w

(* ------------------------------------------------------------------ *)
(* Per-variant key families.                                           *)

(* 31-bit keys (bit 31 clear) keep the paper's deliberate weakness —
   the kernel treats negative UIDs specially, so no variant's key may
   flip the sign bit — and distinct XOR keys are pairwise disjoint by
   construction ([x ^ ki = x ^ kj] iff [ki = kj]). *)
let fresh_key31 prng = 1 + Prng.int prng (0x7FFFFFFF - 1)

let keygen ~seed ~reserved n =
  let prng = Prng.create ~seed in
  let taken = ref reserved in
  Array.init n (fun _ ->
      let rec pick budget =
        if budget = 0 then failwith "Reexpression.keygen: key space exhausted";
        let k = fresh_key31 prng in
        if List.mem k !taken then pick (budget - 1)
        else begin
          taken := k :: !taken;
          k
        end
      in
      pick 1_000)

(* Deterministic fixed-seed keys for variants >= 2 of the default UID
   variation. Variant 1 keeps the paper's published key so the Table 1
   row (and the documented bit-31 escape) is reproduced exactly. *)
let derived_keys = lazy (keygen ~seed:0x0D51_2008 ~reserved:[ 0; paper_uid_key ] 62)

let variant_key index =
  if index < 0 then invalid_arg "Reexpression.variant_key: negative variant index";
  if index = 0 then 0
  else if index = 1 then paper_uid_key
  else begin
    let keys = Lazy.force derived_keys in
    if index - 2 >= Array.length keys then
      invalid_arg "Reexpression.variant_key: too many variants";
    keys.(index - 2)
  end

let uid_for_variant index =
  if index = 0 then identity else xor_key ~key:(variant_key index)

let assert_family name specs =
  (match all_pairs_disjoint specs with
  | Ok () -> ()
  | Error (i, j, _) ->
    invalid_arg
      (Printf.sprintf "Reexpression.%s: variants %d and %d are not disjoint"
         name i j));
  specs

let xor_family ~seed n =
  if n < 1 then invalid_arg "Reexpression.xor_family: need at least one variant";
  let keys = keygen ~seed ~reserved:[ 0 ] (n - 1) in
  assert_family "xor_family"
    (Array.init n (fun i -> if i = 0 then identity else xor_key ~key:keys.(i - 1)))

let rotation_family ?(seed = 0x0D51_2009) n =
  if n < 1 then invalid_arg "Reexpression.rotation_family: need at least one variant";
  if n > 32 then invalid_arg "Reexpression.rotation_family: at most 32 rotations";
  let prng = Prng.create ~seed in
  let specs = Array.make n identity in
  for i = 1 to n - 1 do
    (* Greedy: pair rotation [i] with a key the GF(2) solver certifies
       disjoint against every earlier variant. A pure rotation can
       never work (0 and 0xFFFFFFFF are fixed points of every
       rotation), which is exactly why the family composes the axes. *)
    let rec search budget =
      if budget = 0 then
        failwith "Reexpression.rotation_family: no certifiable key found";
      let candidate = rot_xor ~k:i ~key:(fresh_key31 prng) in
      let ok = ref true in
      for j = 0 to i - 1 do
        if disjointness specs.(j) candidate <> Proven then ok := false
      done;
      if !ok then candidate else search (budget - 1)
    in
    specs.(i) <- search 10_000
  done;
  assert_family "rotation_family" specs

let rotation_only_family n =
  if n < 1 then
    invalid_arg "Reexpression.rotation_only_family: need at least one variant";
  if n > 32 then invalid_arg "Reexpression.rotation_only_family: at most 32 rotations";
  Array.init n (fun i -> rotate ~k:i)

let add_family ?(stride = 0x0100_0001) n =
  if n < 1 then invalid_arg "Reexpression.add_family: need at least one variant";
  if low31 stride = 0 then invalid_arg "Reexpression.add_family: stride must be nonzero mod 2^31";
  assert_family "add_family"
    (Array.init n (fun i -> add_mod31 ~offset:(i * stride)))

(* ------------------------------------------------------------------ *)

type table1_row = {
  variation : string;
  target_type : string;
  r0 : string;
  r1 : string;
  r0_inv : string;
  r1_inv : string;
}

let table1 =
  [
    {
      variation = "Address Space Partitioning [16]";
      target_type = "Address";
      r0 = "R0(a) = a";
      r1 = "R1(a) = a + 0x80000000";
      r0_inv = "R0^-1(a) = a";
      r1_inv = "R1^-1(a) = a - 0x80000000";
    };
    {
      variation = "Extended Address Space Partitioning [9]";
      target_type = "Address";
      r0 = "R0(a) = a";
      r1 = "R1(a) = a + 0x80000000 + offset";
      r0_inv = "R0^-1(a) = a";
      r1_inv = "R1^-1(a) = a - 0x80000000 - offset";
    };
    {
      variation = "Instruction Set Tagging [16]";
      target_type = "Instruction";
      r0 = "R0(inst) = 0 || inst";
      r1 = "R1(inst) = 1 || inst";
      r0_inv = "R0^-1(0 || inst) = inst";
      r1_inv = "R1^-1(1 || inst) = inst";
    };
    {
      variation = "UID Variation (this paper)";
      target_type = "UID";
      r0 = "R0(u) = u";
      r1 = "R1(u) = u ^ 0x7FFFFFFF";
      r0_inv = "R0^-1(u) = u";
      r1_inv = "R1^-1(u) = u ^ 0x7FFFFFFF";
    };
    {
      variation = "UID Variation, per-variant keys (N > 2)";
      target_type = "UID";
      r0 = "R0(u) = u";
      r1 = "Ri(u) = u ^ ki (ki pairwise distinct, bit 31 clear)";
      r0_inv = "R0^-1(u) = u";
      r1_inv = "Ri^-1(u) = u ^ ki";
    };
    {
      variation = "UID Variation, per-boot seeded masks";
      target_type = "UID";
      r0 = "R0(u) = u";
      r1 = "Ri(u) = u ^ mask_i (mask_i drawn per boot from a PRNG seed)";
      r0_inv = "R0^-1(u) = u";
      r1_inv = "Ri^-1(u) = u ^ mask_i";
    };
    {
      variation = "UID Rotation + XOR";
      target_type = "UID";
      r0 = "R0(u) = u";
      r1 = "Ri(u) = rol(u, i) ^ ki (key certified by the GF(2) witness)";
      r0_inv = "R0^-1(u) = u";
      r1_inv = "Ri^-1(u) = ror(u ^ ki, i)";
    };
    {
      variation = "UID Addition mod 2^31";
      target_type = "UID";
      r0 = "R0(u) = u";
      r1 = "Ri(u) = bit31(u) || (u + i*stride mod 2^31)";
      r0_inv = "R0^-1(u) = u";
      r1_inv = "Ri^-1(u) = bit31(u) || (u - i*stride mod 2^31)";
    };
  ]
