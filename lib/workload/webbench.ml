module Engine = Nv_sim.Engine
module Resource = Nv_sim.Resource
module Metrics = Nv_util.Metrics

type load = { clients : int; duration_s : float }

let unsaturated = { clients = 1; duration_s = 30.0 }

let saturated = { clients = 15; duration_s = 30.0 }

type result = {
  requests_completed : int;
  throughput_kb_s : float;
  latency_ms : float;
  latency_p50_ms : float;
  latency_p99_ms : float;
  cpu_utilization : float;
  rendezvous_total : int;
}

let pp_result ppf r =
  Format.fprintf ppf
    "%d reqs, %.0f KB/s, %.2f ms mean (%.2f ms p50, %.2f ms p99), cpu %.0f%%, %d rendezvous"
    r.requests_completed r.throughput_kb_s r.latency_ms r.latency_p50_ms r.latency_p99_ms
    (100.0 *. r.cpu_utilization) r.rendezvous_total

let run ?(seed = 11) ?(cost = Cost_model.default) ~variants ~samples load =
  if Array.length samples = 0 then invalid_arg "Webbench.run: no samples";
  if load.clients < 1 then invalid_arg "Webbench.run: need at least one client";
  let engine = Engine.create () in
  let cpu = Resource.create engine ~name:"cpu" ~capacity:1 in
  let nic = Resource.create engine ~name:"nic" ~capacity:1 in
  let prng = Nv_util.Prng.create ~seed in
  (* Single accounting path for request latencies: the metrics timer's
     histogram is both the exported metric and the source of the
     mean/p50/p99 summary below (the old side list double-tracked the
     same durations and could drift from the exported numbers). *)
  let latency_timer =
    Metrics.timer
      (Metrics.scope (Engine.metrics engine) "workload")
      "request_latency_s"
      ~clock:(fun () -> Engine.now engine)
  in
  let bytes_out = ref 0 in
  let rendezvous_total = ref 0 in
  (* The single horizon predicate: an instant is in the measurement
     window iff it is strictly before the horizon. Used both for
     issuing new requests and for counting completions, so the two
     can never disagree. ([Engine.run ~until] additionally guarantees
     no event fires after the horizon.) *)
  let in_window time = time < load.duration_s in
  let next_sample =
    let cursor = ref (Nv_util.Prng.int prng (Array.length samples)) in
    fun () ->
      let s = samples.(!cursor mod Array.length samples) in
      incr cursor;
      s
  in
  let rec client_loop () =
    if in_window (Engine.now engine) then begin
      let sample = next_sample () in
      let stop_timer = Metrics.start latency_timer in
      (* Request travels to the server. *)
      Engine.schedule_after engine ~delay:(cost.Cost_model.rtt_s /. 2.0) (fun () ->
          let demand =
            Cost_model.cpu_seconds cost ~instructions:sample.Measure.instructions
              ~rendezvous:sample.Measure.rendezvous ~variants
          in
          Resource.serve cpu ~duration:demand (fun () ->
              let wire =
                Cost_model.wire_seconds cost ~bytes:sample.Measure.response_bytes
              in
              Resource.serve nic ~duration:wire (fun () ->
                  Engine.schedule_after engine ~delay:(cost.Cost_model.rtt_s /. 2.0)
                    (fun () ->
                      if in_window (Engine.now engine) then begin
                        bytes_out := !bytes_out + sample.Measure.response_bytes;
                        rendezvous_total := !rendezvous_total + sample.Measure.rendezvous;
                        stop_timer ()
                      end;
                      client_loop ()))))
    end
  in
  for _ = 1 to load.clients do
    (* Slightly stagger client start-up, as real engines do. *)
    Engine.schedule_after engine
      ~delay:(Nv_util.Prng.float prng 0.002)
      client_loop
  done;
  Engine.run ~until:load.duration_s engine;
  let hist = Metrics.timer_histogram latency_timer in
  let completed = Metrics.histogram_count hist in
  let latency_ms =
    if completed = 0 then 0.0
    else 1000.0 *. Metrics.histogram_sum hist /. float_of_int completed
  in
  let latency_p50_ms = 1000.0 *. Metrics.histogram_percentile hist 50.0 in
  let latency_p99_ms = 1000.0 *. Metrics.histogram_percentile hist 99.0 in
  {
    requests_completed = completed;
    throughput_kb_s = float_of_int !bytes_out /. 1024.0 /. load.duration_s;
    latency_ms;
    latency_p50_ms;
    latency_p99_ms;
    cpu_utilization = Resource.utilization cpu;
    rendezvous_total = !rendezvous_total;
  }
