lib/minic/codegen.mli: Nv_vm Tast
