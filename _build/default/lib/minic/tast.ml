(* Typed abstract syntax.

   Produced by the typechecker; consumed by the code generator and by
   the UID transformation passes (which need to know, for every
   expression, whether it denotes a uid_t value). Implicit int-literal
   to uid_t coercions are elaborated into explicit [Tcast (Tuid, lit)]
   nodes, so "UID constants" are syntactically identifiable - exactly
   the property the paper relies on when it transforms constant UID
   values (Section 3.3). *)

type texpr = { e : ekind; ty : Ast.ty }

and ekind =
  | Tint_lit of int
  | Tchar_lit of char
  | Tstr_lit of string
  | Tvar of string
  | Tunop of Ast.unop * texpr
  | Tbinop of Ast.binop * texpr * texpr
  | Tassign of tlvalue * texpr
  | Tcall of string * texpr list
  | Tindex of texpr * texpr
  | Tderef of texpr
  | Taddr_of of tlvalue
  | Tcast of Ast.ty * texpr

and tlvalue = { lv : lvkind; lv_ty : Ast.ty }

and lvkind =
  | TLvar of string
  | TLindex of texpr * texpr
  | TLderef of texpr

type tstmt =
  | TSexpr of texpr
  | TSdecl of Ast.ty * string * texpr option
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list
  | TSreturn of texpr option
  | TSbreak
  | TScontinue
  | TSblock of tstmt list

type tfunc = {
  fname : string;
  ret : Ast.ty;
  params : (Ast.ty * string) list;
  body : tstmt list;
}

type tprogram = { tglobals : Ast.global list; tfuncs : tfunc list }

let mk e ty = { e; ty }

let is_uid texpr = texpr.ty = Ast.Tuid

(* A syntactically-identifiable UID constant: the elaborated form of an
   int literal used at type uid_t. *)
let uid_constant_value texpr =
  match texpr with
  | { e = Tcast (Ast.Tuid, { e = Tint_lit v; _ }); ty = Ast.Tuid } -> Some v
  | _ -> None

let uid_constant v = mk (Tcast (Ast.Tuid, mk (Tint_lit v) Ast.Tint)) Ast.Tuid

(* Erase types back to the surface syntax (for pretty-printing the
   transformed variants). *)
let rec erase_expr { e; _ } =
  match e with
  | Tint_lit v -> Ast.Int_lit v
  | Tchar_lit c -> Ast.Char_lit c
  | Tstr_lit s -> Ast.Str_lit s
  | Tvar name -> Ast.Var name
  | Tunop (op, a) -> Ast.Unop (op, erase_expr a)
  | Tbinop (op, a, b) -> Ast.Binop (op, erase_expr a, erase_expr b)
  | Tassign (lv, a) -> Ast.Assign (erase_lvalue lv, erase_expr a)
  | Tcall (name, args) -> Ast.Call (name, List.map erase_expr args)
  | Tindex (a, i) -> Ast.Index (erase_expr a, erase_expr i)
  | Tderef a -> Ast.Deref (erase_expr a)
  | Taddr_of lv -> Ast.Addr_of (erase_lvalue lv)
  | Tcast (ty, a) -> Ast.Cast (ty, erase_expr a)

and erase_lvalue { lv; _ } =
  match lv with
  | TLvar name -> Ast.Lvar name
  | TLindex (a, i) -> Ast.Lindex (erase_expr a, erase_expr i)
  | TLderef a -> Ast.Lderef (erase_expr a)

let rec erase_stmt = function
  | TSexpr e -> Ast.Sexpr (erase_expr e)
  | TSdecl (ty, name, init) -> Ast.Sdecl (ty, name, Option.map erase_expr init)
  | TSif (c, t, f) -> Ast.Sif (erase_expr c, List.map erase_stmt t, List.map erase_stmt f)
  | TSwhile (c, body) -> Ast.Swhile (erase_expr c, List.map erase_stmt body)
  | TSreturn e -> Ast.Sreturn (Option.map erase_expr e)
  | TSbreak -> Ast.Sbreak
  | TScontinue -> Ast.Scontinue
  | TSblock body -> Ast.Sblock (List.map erase_stmt body)

let erase { tglobals; tfuncs } =
  List.map (fun g -> Ast.Dglobal g) tglobals
  @ List.map
      (fun { fname; ret; params; body } ->
        Ast.Dfunc { Ast.fname; ret; params; body = List.map erase_stmt body })
      tfuncs
