type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }

let is_empty t = t.len = 0

let size t = t.len

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow t entry =
  let capacity = Array.length t.data in
  if t.len = capacity then begin
    let new_capacity = max 16 (2 * capacity) in
    let data = Array.make new_capacity entry in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.len && less t.data.(left) t.data.(!smallest) then smallest := left;
  if right < t.len && less t.data.(right) t.data.(!smallest) then smallest := right;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~key ~seq value =
  let entry = { key; seq; value } in
  grow t entry;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let root = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    Some (root.key, root.seq, root.value)
  end

let peek t =
  if t.len = 0 then None
  else begin
    let root = t.data.(0) in
    Some (root.key, root.seq, root.value)
  end
